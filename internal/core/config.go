// Package core assembles the paper's fetch prediction mechanisms: the
// single-block engine of §2 (multiple branch prediction with a blocked
// PHT, BIT table, target array and return address stack, Figure 1) and
// the dual-block engine of §3 (select-table based multiple block
// prediction with single or double selection, Figures 2-5), together
// with the Table 3 penalty accounting and Table 4 bad-branch-recovery
// bookkeeping.
package core

import (
	"fmt"

	"mbbp/internal/icache"
	"mbbp/internal/metrics"
	"mbbp/internal/packed"
	"mbbp/internal/pht"
)

// FetchMode selects how many blocks are fetched per cycle.
type FetchMode int

const (
	// SingleBlock fetches one block per cycle (§2).
	SingleBlock FetchMode = iota
	// DualBlock fetches two blocks per cycle (§3).
	DualBlock
)

func (m FetchMode) String() string {
	if m == DualBlock {
		return "dual"
	}
	return "single"
}

// TargetArrayKind selects the target array implementation.
type TargetArrayKind int

const (
	// NLS is the tagless direct-mapped array (§2; the paper's default,
	// 256 block entries).
	NLS TargetArrayKind = iota
	// BTB is the tagged 4-way set-associative alternative (Table 5).
	BTB
)

func (k TargetArrayKind) String() string {
	if k == BTB {
		return "BTB"
	}
	return "NLS"
}

// Config describes one fetch-architecture configuration. The zero value
// is not valid; start from DefaultConfig.
type Config struct {
	// Geometry is the instruction cache organization (block width,
	// line size, banks, §4.5 kind).
	Geometry icache.Geometry

	// HistoryBits is the GHR length (paper default 10); it also sizes
	// the blocked PHT and each select table at 2^HistoryBits entries.
	HistoryBits int

	// NumPHTs is the number of blocked pattern history tables. 1 (the
	// paper's "one global blocked PHT") uses pure gshare indexing;
	// more tables are selected by the block address's low bits — the
	// paper's per-block variation of Yeh's per-addr scheme.
	NumPHTs int

	// IndexMode selects the two-level index function: gshare (the
	// paper's GHR XOR address, default) or history-only (GAg), kept as
	// an ablation of the design choice.
	IndexMode pht.IndexMode

	// NumSTs is the number of select tables (1, 2, 4 or 8 in Figure 8).
	NumSTs int

	// NumBlocks optionally overrides Mode with the number of blocks
	// fetched per cycle: 0 derives it from Mode (1 or 2); 3 or 4
	// enable the §5 extension ("it is possible to predict more than
	// two blocks per cycle"), which requires single selection and adds
	// one select table and one target array per extra block.
	NumBlocks int

	// RASSize is the return address stack depth (paper: 32).
	RASSize int

	// NearBlock enables 3-bit BIT codes and computed near-block
	// targets (§2, Table 5).
	NearBlock bool

	// BITEntries sizes the separate BIT table (Figure 7); 0 stores BIT
	// information in the instruction cache (always fresh), the paper's
	// configuration for every experiment after Figure 7.
	BITEntries int

	// TargetArray and TargetEntries choose the target array
	// implementation and its number of block entries; BTBAssoc applies
	// to the BTB (paper: 4-way, LRU).
	TargetArray   TargetArrayKind
	TargetEntries int
	BTBAssoc      int

	// Mode and Selection pick the fetch engine variant.
	Mode      FetchMode
	Selection metrics.SelectionMode

	// ICacheLines, ICacheAssoc and ICacheMissPenalty enable the
	// optional instruction-cache content model (an extension — the
	// paper assumes a perfect instruction cache, which is
	// ICacheLines = 0, the default). Misses stall fetch for the given
	// penalty and are reported separately from Table 3 charges.
	ICacheLines       int
	ICacheAssoc       int
	ICacheMissPenalty int

	// Storage selects the predictor-state storage backing: bit-packed
	// words (the default fast path) or the original wide-value slices
	// (packed.BackingReference, the equivalence oracle the differential
	// tests pin the packed path against). Results are byte-identical on
	// either. The TAGE strategy is always packed; it accepts but
	// ignores the reference backing.
	Storage packed.Backing

	// Predictor selects the block-level direction-prediction strategy:
	// PredictorPaper (the blocked PHT, the default and the paper's
	// design) or PredictorTAGE (the tagged-geometric family in
	// internal/tage). Every other structure — BIT, select tables,
	// target arrays, RAS — is shared machinery, unchanged by the
	// strategy.
	Predictor PredictorKind

	// TAGE sizes the tagged-geometric predictor; meaningful only when
	// Predictor is PredictorTAGE (Validate rejects it otherwise).
	// Zero-valued fields take the DefaultTAGEParams values.
	TAGE TAGEParams
}

// TAGEParams sizes the tagged-geometric direction predictor. The zero
// value means "all defaults"; individual zero fields default too, so a
// JSON config can override just one knob.
type TAGEParams struct {
	// Tables is the number of tagged tables (default 4).
	Tables int
	// TableBits is log2 entries per tagged table (default 9).
	TableBits int
	// TagBits is the partial tag width per entry (default 8).
	TagBits int
	// BaseBits is log2 entries of the 2-bit bimodal base predictor
	// (default 11).
	BaseBits int
	// MinHistory and MaxHistory bound the geometric history lengths:
	// table i uses roughly MinHistory * r^i bits with
	// r = (MaxHistory/MinHistory)^(1/(Tables-1)) (defaults 4 and 64).
	MinHistory int
	MaxHistory int
	// ResetPeriod is the useful-bit aging period in predictor updates:
	// every ResetPeriod updates, all useful counters are halved
	// (word-level, the periodic reset that keeps victim selection
	// honest). Default 2048.
	ResetPeriod int
}

// DefaultTAGEParams returns the default tagged-geometric geometry:
// four 512-entry tagged tables (8-bit tags, 3-bit counters, 2-bit
// useful), a 2048-entry bimodal base, history lengths 4..64.
func DefaultTAGEParams() TAGEParams {
	return TAGEParams{
		Tables:      4,
		TableBits:   9,
		TagBits:     8,
		BaseBits:    11,
		MinHistory:  4,
		MaxHistory:  64,
		ResetPeriod: 2048,
	}
}

// EffectiveTAGE resolves the configuration's TAGE parameters with
// defaults applied to zero fields.
func (c Config) EffectiveTAGE() TAGEParams {
	p := c.TAGE
	d := DefaultTAGEParams()
	if p.Tables == 0 {
		p.Tables = d.Tables
	}
	if p.TableBits == 0 {
		p.TableBits = d.TableBits
	}
	if p.TagBits == 0 {
		p.TagBits = d.TagBits
	}
	if p.BaseBits == 0 {
		p.BaseBits = d.BaseBits
	}
	if p.MinHistory == 0 {
		p.MinHistory = d.MinHistory
	}
	if p.MaxHistory == 0 {
		p.MaxHistory = d.MaxHistory
	}
	if p.ResetPeriod == 0 {
		p.ResetPeriod = d.ResetPeriod
	}
	return p
}

// DefaultConfig returns the paper's §4 defaults: block width 8, normal
// cache with 8 banks, GHR length 10, one global blocked PHT, 1024-entry
// select table, 32-entry RAS, 256-entry NLS, near-block off, BIT in the
// instruction cache, dual-block fetching with single selection.
func DefaultConfig() Config {
	return Config{
		Geometry:      icache.ForKind(icache.Normal, 8),
		HistoryBits:   10,
		NumPHTs:       1,
		NumSTs:        1,
		RASSize:       32,
		NearBlock:     false,
		BITEntries:    0,
		TargetArray:   NLS,
		TargetEntries: 256,
		BTBAssoc:      4,
		Mode:          DualBlock,
		Selection:     metrics.SingleSelection,
	}
}

// Validate checks the configuration. Every failure wraps
// ErrInvalidConfig and carries the offending field in a *FieldError, so
// callers can branch on the class (errors.Is) or the field (errors.As)
// instead of matching message strings.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return &FieldError{Field: "Geometry", Reason: err.Error()}
	}
	if c.HistoryBits < 1 || c.HistoryBits > 26 {
		return badField("HistoryBits", "%d out of range [1,26]", c.HistoryBits)
	}
	if c.NumPHTs < 0 || (c.NumPHTs > 0 && c.NumPHTs&(c.NumPHTs-1) != 0) {
		return badField("NumPHTs", "%d must be a power of two", c.NumPHTs)
	}
	if c.NumSTs < 1 || c.NumSTs&(c.NumSTs-1) != 0 {
		return badField("NumSTs", "%d must be a power of two", c.NumSTs)
	}
	switch c.NumBlocks {
	case 0:
	case 1:
		if c.Mode != SingleBlock {
			return badField("NumBlocks", "1 conflicts with dual-block mode")
		}
	case 2:
		if c.Mode != DualBlock {
			return badField("NumBlocks", "2 requires dual-block mode")
		}
	case 3, 4:
		if c.Mode != DualBlock {
			return badField("NumBlocks", "%d requires dual-block mode", c.NumBlocks)
		}
		if c.Selection != metrics.SingleSelection {
			return badField("Selection", "more than two blocks requires single selection")
		}
	default:
		return badField("NumBlocks", "%d out of range [0,4]", c.NumBlocks)
	}
	if c.RASSize < 1 {
		return badField("RASSize", "%d must be positive", c.RASSize)
	}
	if c.BITEntries < 0 || (c.BITEntries > 0 && c.BITEntries&(c.BITEntries-1) != 0) {
		return badField("BITEntries", "%d must be zero or a power of two", c.BITEntries)
	}
	if c.TargetEntries < 1 || c.TargetEntries&(c.TargetEntries-1) != 0 {
		return badField("TargetEntries", "%d must be a power of two", c.TargetEntries)
	}
	if c.TargetArray == BTB {
		if c.BTBAssoc < 1 || c.TargetEntries%c.BTBAssoc != 0 {
			return badField("BTBAssoc", "%d must divide entries %d", c.BTBAssoc, c.TargetEntries)
		}
	}
	if c.Mode == SingleBlock && c.Selection == metrics.DoubleSelection {
		return badField("Selection", "double selection requires dual-block mode")
	}
	if c.ICacheLines > 0 {
		if c.ICacheLines&(c.ICacheLines-1) != 0 {
			return badField("ICacheLines", "%d must be a power of two", c.ICacheLines)
		}
		assoc := c.ICacheAssoc
		if assoc == 0 {
			assoc = 1
		}
		if assoc < 1 || c.ICacheLines%assoc != 0 {
			return badField("ICacheAssoc", "%d must divide ICacheLines %d", assoc, c.ICacheLines)
		}
		if c.ICacheMissPenalty < 1 {
			return badField("ICacheMissPenalty", "must be positive with a finite cache")
		}
	}
	if c.Selection == metrics.DoubleSelection && c.BITEntries != 0 {
		return badField("BITEntries", "double selection removes the BIT table; must be 0")
	}
	if !c.Storage.Valid() {
		return badField("Storage", "%d is not a known backing", c.Storage)
	}
	switch c.Predictor {
	case PredictorPaper:
		if c.TAGE != (TAGEParams{}) {
			return badField("TAGE", "parameters set but Predictor is %s (select PredictorTAGE)", c.Predictor)
		}
	case PredictorTAGE:
		// The paper-PHT-only knobs must stay at their defaults: they
		// have no meaning for the tagged-geometric tables, and silently
		// ignoring them would make sweeps lie about what varied.
		if c.NumPHTs > 1 {
			return badField("NumPHTs", "%d blocked PHTs apply only to the paper predictor", c.NumPHTs)
		}
		if c.IndexMode != pht.IndexGShare {
			return badField("IndexMode", "%s indexing applies only to the paper predictor", c.IndexMode)
		}
		t := c.EffectiveTAGE()
		if t.Tables < 1 || t.Tables > 12 {
			return badField("TAGE.Tables", "%d out of range [1,12]", t.Tables)
		}
		if t.TableBits < 2 || t.TableBits > 20 {
			return badField("TAGE.TableBits", "%d out of range [2,20]", t.TableBits)
		}
		if t.TagBits < 4 || t.TagBits > 16 {
			return badField("TAGE.TagBits", "%d out of range [4,16]", t.TagBits)
		}
		if t.BaseBits < 2 || t.BaseBits > 24 {
			return badField("TAGE.BaseBits", "%d out of range [2,24]", t.BaseBits)
		}
		if t.MinHistory < 1 || t.MaxHistory > 256 || t.MinHistory > t.MaxHistory {
			return badField("TAGE.MinHistory", "history lengths %d..%d must satisfy 1 <= min <= max <= 256",
				t.MinHistory, t.MaxHistory)
		}
		if t.MaxHistory-t.MinHistory+1 < t.Tables {
			// Strictly increasing per-table lengths within
			// [MinHistory, MaxHistory] need at least Tables distinct
			// values in the range.
			return badField("TAGE.MaxHistory", "history range %d..%d too narrow for %d strictly increasing table lengths",
				t.MinHistory, t.MaxHistory, t.Tables)
		}
		if t.ResetPeriod < 1 {
			return badField("TAGE.ResetPeriod", "%d must be positive", t.ResetPeriod)
		}
	default:
		return badField("Predictor", "%d is not a known predictor kind", int(c.Predictor))
	}
	return nil
}

// Blocks returns the number of blocks fetched per cycle.
func (c Config) Blocks() int {
	if c.NumBlocks > 0 {
		return c.NumBlocks
	}
	if c.Mode == DualBlock {
		return 2
	}
	return 1
}

func (c Config) numPHTs() int {
	if c.NumPHTs == 0 {
		return 1
	}
	return c.NumPHTs
}

// String renders a compact configuration summary.
func (c Config) String() string {
	sel := ""
	if c.Blocks() > 1 {
		sel = "/" + c.Selection.String()
	}
	near := ""
	if c.NearBlock {
		near = " near"
	}
	pred := ""
	if c.Predictor != PredictorPaper {
		pred = " " + c.PredictorLabel()
	}
	return fmt.Sprintf("%dblk%s %s W=%d h=%d ST=%d %s=%d%s%s",
		c.Blocks(), sel, c.Geometry.Kind, c.Geometry.BlockWidth, c.HistoryBits,
		c.NumSTs, c.TargetArray, c.TargetEntries, near, pred)
}

// PredictorLabel renders the direction-prediction strategy compactly:
// "paper" for the blocked PHT, or the tagged-geometric shape
// ("tage(4x2^9 tag8 h4-64)").
func (c Config) PredictorLabel() string {
	if c.Predictor != PredictorTAGE {
		return c.Predictor.String()
	}
	t := c.EffectiveTAGE()
	return fmt.Sprintf("tage(%dx2^%d tag%d h%d-%d)",
		t.Tables, t.TableBits, t.TagBits, t.MinHistory, t.MaxHistory)
}
