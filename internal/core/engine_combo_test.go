package core

// Cross-feature combination tests: the paper's mechanisms interact
// (near-block encoding changes the select-table payload, the extended
// cache changes BIT entry widths, N-block groups use deeper ST slots),
// and each combination must keep the global accounting invariants.

import (
	"testing"

	"mbbp/internal/icache"
	"mbbp/internal/metrics"
	"mbbp/internal/trace"
	"mbbp/internal/workload"
)

func comboTrace(t *testing.T, name string, n uint64) *trace.Buffer {
	t.Helper()
	b, err := workload.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := b.Trace(n)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func checkInvariants(t *testing.T, label string, cfg Config, res metrics.Result) {
	t.Helper()
	if res.Instructions == 0 || res.Blocks == 0 || res.FetchCycles == 0 {
		t.Fatalf("%s: empty result", label)
	}
	if cfg.Blocks() == 1 && res.FetchCycles != res.Blocks {
		t.Errorf("%s: cycles %d != blocks %d", label, res.FetchCycles, res.Blocks)
	}
	if uint64(cfg.Blocks())*res.FetchCycles < res.Blocks {
		t.Errorf("%s: %d cycles cannot cover %d blocks", label, res.FetchCycles, res.Blocks)
	}
	if res.CondMispredicts > res.CondBranches {
		t.Errorf("%s: more mispredicts than branches", label)
	}
	if res.IPB() > float64(cfg.Geometry.BlockWidth) {
		t.Errorf("%s: IPB %.2f exceeds W", label, res.IPB())
	}
}

func TestFeatureCombinations(t *testing.T) {
	tr := comboTrace(t, "gcc", 120_000)
	fpTr := comboTrace(t, "tomcatv", 120_000)

	cases := []struct {
		label  string
		mutate func(*Config)
	}{
		{"near+dual", func(c *Config) { c.NearBlock = true }},
		{"near+dual+8ST", func(c *Config) { c.NearBlock = true; c.NumSTs = 8 }},
		{"near+extended", func(c *Config) {
			c.NearBlock = true
			c.Geometry = icache.ForKind(icache.Extended, 8)
		}},
		{"near+selfaligned", func(c *Config) {
			c.NearBlock = true
			c.Geometry = icache.ForKind(icache.SelfAligned, 8)
		}},
		{"finiteBIT+extended", func(c *Config) {
			c.BITEntries = 128
			c.Geometry = icache.ForKind(icache.Extended, 8)
		}},
		{"finiteBIT+dual+near", func(c *Config) { c.BITEntries = 128; c.NearBlock = true }},
		{"double+selfaligned", func(c *Config) {
			c.Selection = metrics.DoubleSelection
			c.Geometry = icache.ForKind(icache.SelfAligned, 8)
			c.NumSTs = 8
		}},
		{"btb+near+dual", func(c *Config) {
			c.TargetArray = BTB
			c.TargetEntries = 32
			c.NearBlock = true
		}},
		{"3blk+near", func(c *Config) { c.NumBlocks = 3; c.NearBlock = true }},
		{"4blk+selfaligned", func(c *Config) {
			c.NumBlocks = 4
			c.Geometry = icache.ForKind(icache.SelfAligned, 8)
		}},
		{"4blk+btb", func(c *Config) { c.NumBlocks = 4; c.TargetArray = BTB; c.TargetEntries = 64 }},
		{"multiPHT+dual", func(c *Config) { c.NumPHTs = 8 }},
		{"icache+dual+near", func(c *Config) {
			c.ICacheLines = 128
			c.ICacheAssoc = 2
			c.ICacheMissPenalty = 10
			c.NearBlock = true
		}},
	}
	for _, c := range cases {
		cfg := DefaultConfig()
		c.mutate(&cfg)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", c.label, err)
		}
		e, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.label, err)
		}
		res := e.Run(tr)
		checkInvariants(t, c.label+"/gcc", cfg, res)

		e2, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res2 := e2.Run(fpTr)
		checkInvariants(t, c.label+"/tomcatv", cfg, res2)
		if res2.CondAccuracy() <= res.CondAccuracy() {
			t.Errorf("%s: FP accuracy %.3f should beat gcc %.3f",
				c.label, res2.CondAccuracy(), res.CondAccuracy())
		}
	}
}

// TestNearBlockHelpsUnderPressure checks the Table 5 claim holds in
// dual-block mode on a real workload: with a tiny target array,
// near-block encoding strictly reduces immediate misfetch penalties.
func TestNearBlockHelpsUnderPressure(t *testing.T) {
	tr := comboTrace(t, "gcc", 150_000)
	run := func(near bool) metrics.Result {
		cfg := DefaultConfig()
		cfg.TargetEntries = 8
		cfg.NearBlock = near
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e.Run(tr)
	}
	with := run(true)
	without := run(false)
	if with.PenaltyCycles[metrics.MisfetchImmediate] >= without.PenaltyCycles[metrics.MisfetchImmediate] {
		t.Errorf("near-block immediate misfetch cycles %d should be below %d",
			with.PenaltyCycles[metrics.MisfetchImmediate],
			without.PenaltyCycles[metrics.MisfetchImmediate])
	}
	if with.IPCf() <= without.IPCf() {
		t.Errorf("near-block IPC_f %.2f should beat %.2f under array pressure",
			with.IPCf(), without.IPCf())
	}
}

// TestThreeBlockUsesThirdSlot checks the N-block extension actually
// exercises the Third select-table slot: a three-block steady loop must
// reach fewer fetch cycles than a two-block engine on the same trace.
func TestThreeBlockUsesThirdSlot(t *testing.T) {
	tr := fourBlockLoop(300)
	run := func(blocks int) metrics.Result {
		cfg := DefaultConfig()
		cfg.NumBlocks = blocks
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e.Run(tr)
	}
	two := run(2)
	three := run(3)
	if three.FetchCycles >= two.FetchCycles {
		t.Errorf("3-block cycles %d not below 2-block %d", three.FetchCycles, two.FetchCycles)
	}
}
