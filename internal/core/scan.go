package core

import (
	"mbbp/internal/bitable"
	"mbbp/internal/isa"
	"mbbp/internal/seltab"
)

// scanResult is the output of the fetch control logic's scan of a
// block's BIT codes and PHT counters (§2): where the block is predicted
// to exit and the multiplexer selector for its successor.
type scanResult struct {
	exit int // predicted exit index within the block, -1 = no redirect found
	sel  seltab.Selector
}

// directionReader is the read-only slice of the Predictor contract the
// scan needs: the predicted direction per position of the latched
// block. pht.Entry satisfies it too, which lets unit tests drive the
// scan from a hand-built counter slice.
type directionReader interface {
	Taken(pos int) bool
}

// scan walks the block's positions using the type code slice and the
// direction predictions for the latched block, stopping at the first
// unconditional transfer or conditional branch predicted taken. codes
// holds the BIT code for each block-relative position (true codes, or
// stale table contents for the BIT-penalty check). dir is the direction
// source — normally the engine's predictor, already latched on this
// block.
func (e *Engine) scan(blk *block, codes []bitable.Code, dir directionReader) scanResult {
	w := e.geom.BlockWidth
	line := uint32(e.geom.LineSize)
	var nt uint8
	for j := 0; j < blk.n(); j++ {
		code := codes[j]
		addr := blk.start + uint32(j)
		pos := uint8(addr % uint32(w))
		switch {
		case code == bitable.CodePlain:
			continue
		case code == bitable.CodeReturn:
			return scanResult{exit: j, sel: seltab.Selector{
				Source: seltab.SrcRAS, Pos: pos, NTCount: nt,
			}}
		case code == bitable.CodeOther:
			return scanResult{exit: j, sel: seltab.Selector{
				Source: seltab.SrcTarget, Pos: pos, NTCount: nt,
			}}
		default: // conditional branch variants
			if !dir.Taken(int(addr) % w) {
				nt++
				continue
			}
			sel := seltab.Selector{Pos: pos, NTCount: nt, TakenBit: true}
			if code.IsNear() {
				switch code {
				case bitable.CodeCondPrev:
					sel.Source = seltab.SrcNearPrev
				case bitable.CodeCondSame:
					sel.Source = seltab.SrcNearSame
				case bitable.CodeCondNext:
					sel.Source = seltab.SrcNearNext
				default:
					sel.Source = seltab.SrcNearNext2
				}
				// The starting offset within the target line comes
				// from the branch's encoded offset; the true-code scan
				// knows it from the instruction itself.
				sel.StartOff = uint8(blk.insts[j].Target % line)
			} else {
				sel.Source = seltab.SrcTarget
			}
			return scanResult{exit: j, sel: sel}
		}
	}
	return scanResult{exit: -1, sel: seltab.Selector{Source: seltab.SrcFallThrough, NTCount: nt}}
}

// evaluate resolves a scan's selector to the concrete successor address,
// using the role the successor will be fetched in (the dual target array
// of §3.1 indexes the first target by the block's own address and the
// second target by its predecessor's address). ok is false when a
// tagged target array missed.
func (e *Engine) evaluate(blk *block, sc scanResult, succRole int) (addr uint32, ok bool) {
	switch sc.sel.Source {
	case seltab.SrcFallThrough:
		return blk.start + uint32(blk.n()), true
	case seltab.SrcRAS:
		return e.ras.Top(), true
	case seltab.SrcTarget:
		indexAddr, targetNum := blk.start, 0
		if succRole >= 1 && succRole <= e.ringLen {
			// Array number r is indexed by the block r-1 positions
			// before this one — the group's indexing block (§3.1).
			indexAddr, targetNum = e.addrRing[succRole-1], succRole
		}
		t, _, hit := e.tgt.Lookup(indexAddr, int(sc.sel.Pos), targetNum)
		return t, hit
	default: // near-block sources
		exitAddr := blk.start + uint32(sc.exit)
		lineStart := e.geom.LineStart(exitAddr)
		delta := int32(0)
		switch sc.sel.Source {
		case seltab.SrcNearPrev:
			delta = -1
		case seltab.SrcNearSame:
			delta = 0
		case seltab.SrcNearNext:
			delta = 1
		case seltab.SrcNearNext2:
			delta = 2
		}
		return uint32(int64(lineStart) + int64(delta)*int64(e.geom.LineSize) + int64(sc.sel.StartOff)), true
	}
}

// correctedSelector builds the selector a scan would produce once the
// predictor reflects the block's actual outcomes — the "replacement
// selector" pre-computed into a bad branch recovery entry (Table 4) and
// written into the select table after a misprediction without a second
// chance.
func (e *Engine) correctedSelector(blk *block) seltab.Selector {
	w := uint32(e.geom.BlockWidth)
	line := uint32(e.geom.LineSize)
	var nt uint8
	for j, rec := range blk.insts {
		if rec.Class == isa.ClassCond && !rec.Taken {
			nt++
			continue
		}
		if !rec.Taken {
			continue
		}
		addr := blk.start + uint32(j)
		sel := seltab.Selector{Pos: uint8(addr % w), NTCount: nt}
		switch rec.Class {
		case isa.ClassReturn:
			sel.Source = seltab.SrcRAS
		case isa.ClassCond:
			sel.TakenBit = true
			code := bitable.Encode(rec.Class, addr, rec.Target, e.geom.LineSize, e.cfg.NearBlock)
			if code.IsNear() {
				switch code {
				case bitable.CodeCondPrev:
					sel.Source = seltab.SrcNearPrev
				case bitable.CodeCondSame:
					sel.Source = seltab.SrcNearSame
				case bitable.CodeCondNext:
					sel.Source = seltab.SrcNearNext
				default:
					sel.Source = seltab.SrcNearNext2
				}
				sel.StartOff = uint8(rec.Target % line)
			} else {
				sel.Source = seltab.SrcTarget
			}
		default:
			sel.Source = seltab.SrcTarget
		}
		return sel
	}
	return seltab.Selector{Source: seltab.SrcFallThrough, NTCount: nt}
}
