package core

import (
	"fmt"
	"strings"

	"mbbp/internal/pht"
)

// StructStats is a point-in-time snapshot of the engine's predictor
// structures, for analysis tools: how trained the direction predictor
// is, how much of the select table is live, and how deep the return
// stack sits.
type StructStats struct {
	// PHTCounters is the distribution of direction-counter states
	// (strongly-NT, weakly-NT, weakly-T, strongly-T); wider counters
	// (TAGE's 3-bit) bucket by direction and strength.
	PHTCounters [4]uint64
	// STValid is the number of valid select-table entries and STTotal
	// the capacity (0/0 in single-block mode).
	STValid, STTotal uint64
	// RASDepth is the current return stack depth.
	RASDepth int
	// GHR is the current global history value.
	GHR uint32
}

// Stats snapshots the engine's structures.
func (e *Engine) Stats() StructStats {
	var s StructStats
	s.PHTCounters = e.pred.CounterStates()
	if e.st != nil {
		s.STTotal = uint64(e.st.Tables() * e.st.EntriesPerTable())
		s.STValid = e.stValidCount()
	}
	s.RASDepth = e.ras.Depth()
	s.GHR = e.ghr.Value()
	return s
}

// stValidCount counts live select-table entries.
func (e *Engine) stValidCount() uint64 {
	return uint64(e.st.ValidCount())
}

// TrainedFraction returns the share of PHT counters that have left
// their initial weakly-not-taken state.
func (s StructStats) TrainedFraction() float64 {
	var total uint64
	for _, c := range s.PHTCounters {
		total += c
	}
	if total == 0 {
		return 0
	}
	return 1 - float64(s.PHTCounters[pht.WeaklyNotTaken])/float64(total)
}

// STOccupancy returns the live fraction of the select table.
func (s StructStats) STOccupancy() float64 {
	if s.STTotal == 0 {
		return 0
	}
	return float64(s.STValid) / float64(s.STTotal)
}

// String renders a short summary.
func (s StructStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pht=[%d %d %d %d] trained=%.1f%%",
		s.PHTCounters[0], s.PHTCounters[1], s.PHTCounters[2], s.PHTCounters[3],
		100*s.TrainedFraction())
	if s.STTotal > 0 {
		fmt.Fprintf(&b, " st=%.1f%%", 100*s.STOccupancy())
	}
	fmt.Fprintf(&b, " ras=%d ghr=%#x", s.RASDepth, s.GHR)
	return b.String()
}
