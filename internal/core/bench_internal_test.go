package core

import (
	"testing"

	"mbbp/internal/cpu"
	"mbbp/internal/icache"
)

// BenchmarkConsume measures the dual-block engine's block-processing
// rate on a synthetic control-flow trace.
func BenchmarkConsume(b *testing.B) {
	tr := randomTrace(1, 10_000)
	e, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	total := uint64(0)
	for i := 0; i < b.N; i++ {
		res := e.Run(tr)
		total += res.Instructions
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkBlockReader measures pure segmentation throughput.
func BenchmarkBlockReader(b *testing.B) {
	tr := randomTrace(2, 10_000)
	geom := icache.ForKind(icache.Normal, 8)
	b.ResetTimer()
	blocks := 0
	for i := 0; i < b.N; i++ {
		tr.Reset()
		rd := newBlockReader(tr, geom)
		for {
			if _, ok := rd.next(); !ok {
				break
			}
			blocks++
		}
	}
	if blocks == 0 {
		b.Fatal("no blocks")
	}
}

// BenchmarkScanOnly isolates the BIT/PHT scan.
func BenchmarkScanOnly(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Mode = SingleBlock
	e, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tr := randomTrace(3, 4096)
	tr.Reset()
	rd := newBlockReader(tr, e.geom)
	var blocks []block
	for {
		blk, ok := rd.next()
		if !ok {
			break
		}
		cp := blk
		cp.insts = append([]cpu.Retired(nil), blk.insts...)
		blocks = append(blocks, cp)
	}
	e.pred.Lookup(0, 0)
	sh := newSharedBlock(e.geom)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := &blocks[i%len(blocks)]
		sh.set(blk)
		_ = e.scan(blk, sh.trueCodes(e.cfg.NearBlock), e.pred)
	}
}

// BenchmarkLaneSet measures a 8-lane lockstep run against the same
// work done as 8 independent engine runs (BenchmarkConsume × 8).
func BenchmarkLaneSet(b *testing.B) {
	tr := randomTrace(1, 10_000)
	cfgs := make([]Config, 8)
	for i := range cfgs {
		cfgs[i] = DefaultConfig()
		cfgs[i].HistoryBits = 6 + i
	}
	ls, err := NewLanes(cfgs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	total := uint64(0)
	for i := 0; i < b.N; i++ {
		rs := ls.Run(tr)
		total += rs[0].Instructions
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "instrs/s")
}
