package core

import (
	"testing"
	"testing/quick"

	"mbbp/internal/cost"
	"mbbp/internal/metrics"
	"mbbp/internal/packed"
)

// TestStorageEquivalence fuzzes configurations and traces and requires
// the packed and reference backings to produce identical results and
// identical structure snapshots — the engine-level statement of the
// packed arrays' losslessness.
func TestStorageEquivalence(t *testing.T) {
	f := func(seed int64, a, b, c, d, e, g uint8) bool {
		cfg := randomConfig(a, b, c, d, e, g)
		cfg.Storage = packed.BackingPacked
		pk, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Storage = packed.BackingReference
		ref, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr := randomTrace(seed, 3000)
		rp, rr := pk.Run(tr), ref.Run(tr)
		if rp != rr {
			t.Logf("results diverge:\npacked:    %+v\nreference: %+v", rp, rr)
			return false
		}
		sp, sr := pk.Stats(), ref.Stats()
		if sp != sr {
			t.Logf("stats diverge:\npacked:    %+v\nreference: %+v", sp, sr)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestConfigRejectsUnknownStorage(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Storage = packed.Backing(7)
	if err := cfg.Validate(); err == nil {
		t.Error("unknown storage backing should not validate")
	}
}

// TestStateBitsMatchesCostModel pins the measured breakdown of live
// engines against the cost package's Table 7 closed forms for the
// paper's walkthrough configuration.
func TestStateBitsMatchesCostModel(t *testing.T) {
	p := cost.PaperParams()
	est := cost.Compute(p)

	single := DefaultConfig()
	single.Mode = SingleBlock
	single.BITEntries = p.BITEntries
	eng, err := New(single)
	if err != nil {
		t.Fatal(err)
	}
	s := eng.StateBits()
	if s.PHT != est.PHT {
		t.Errorf("PHT = %d, want %d", s.PHT, est.PHT)
	}
	if s.BIT != est.BIT {
		t.Errorf("BIT = %d, want %d", s.BIT, est.BIT)
	}
	if s.SelectTable != 0 {
		t.Errorf("single-block SelectTable = %d, want 0", s.SelectTable)
	}
	if s.TargetArray != est.NLS {
		t.Errorf("TargetArray = %d, want %d", s.TargetArray, est.NLS)
	}

	dual := DefaultConfig() // dual/single-select, BIT in cache
	eng, err = New(dual)
	if err != nil {
		t.Fatal(err)
	}
	s = eng.StateBits()
	if s.SelectTable != est.ST {
		t.Errorf("dual SelectTable = %d, want %d", s.SelectTable, est.ST)
	}
	if s.BIT != 0 {
		t.Errorf("in-cache BIT = %d, want 0", s.BIT)
	}
	if s.TargetArray != 2*est.NLS {
		t.Errorf("dual TargetArray = %d, want %d", s.TargetArray, 2*est.NLS)
	}
	if s.Total() != s.PHT+s.BIT+s.SelectTable+s.TargetArray {
		t.Error("Total is not the sum of the parts")
	}

	double := DefaultConfig()
	double.Selection = metrics.DoubleSelection
	eng, err = New(double)
	if err != nil {
		t.Fatal(err)
	}
	s = eng.StateBits()
	if s.SelectTable != est.STDouble {
		t.Errorf("double SelectTable = %d, want %d", s.SelectTable, est.STDouble)
	}
	if s.BIT != 0 {
		t.Errorf("double-selection BIT = %d, want 0", s.BIT)
	}
}

// TestScalarBackedEquivalence pins the Figure 6 baseline across
// backings.
func TestScalarBackedEquivalence(t *testing.T) {
	tr := randomTrace(11, 5000)
	rp := RunScalarBacked(tr, 10, 8, packed.BackingPacked)
	rr := RunScalarBacked(tr, 10, 8, packed.BackingReference)
	if rp != rr {
		t.Errorf("scalar baseline diverges:\npacked:    %+v\nreference: %+v", rp, rr)
	}
}
