package core

import (
	"fmt"

	"mbbp/internal/bitable"
	"mbbp/internal/cpu"
	"mbbp/internal/icache"
	"mbbp/internal/isa"
	"mbbp/internal/metrics"
	"mbbp/internal/pht"
	"mbbp/internal/ras"
	"mbbp/internal/seltab"
	"mbbp/internal/target"
	"mbbp/internal/trace"
)

// Engine is one configured instance of the paper's fetch prediction
// hardware. Create it with New and drive it with Run; predictor state
// (PHT counters, target arrays, select tables) persists across Run
// calls, so call Reset between unrelated workloads.
type Engine struct {
	cfg    Config
	geom   icache.Geometry
	blocks int // blocks fetched per cycle (1, 2, or the §5 extension's 3-4)

	ghr    *pht.GHR
	pred   Predictor
	bit    *bitable.Table
	tgt    target.Array
	ras    *ras.Stack
	st     *seltab.Table
	icache *icache.Model // nil = perfect (the paper's assumption)

	res metrics.Result

	// Carried fetch state. addrRing holds the starting addresses of
	// recently consumed blocks, most recent first: the dual (and
	// N-block) target arrays are indexed by predecessor blocks, and
	// target array t is indexed t blocks back (§3.1).
	addrRing [seltab.MaxBlocks]uint32
	ringLen  int
	prevGHR  uint32 // GHR value when the most recent block was scanned
	// cycGHR/cycAddr snapshot the select-table index of the block
	// group currently in flight: the slot that predicted this group's
	// non-first blocks.
	cycGHR   uint32
	cycAddr  uint32
	cycValid bool
	role     int // role of the next block to consume: 0 = first of a group

	// Per-engine scratch buffers, sized once in New and reused for
	// every block so the consume hot path performs no heap allocation.
	linesA      []uint32
	staleBuf    []bitable.Code
	knownBuf    []bool
	lineCodeBuf []bitable.Code

	obs Observer
	// runObs is the observer active for the current Run: e.obs unless a
	// gated observer reported itself disabled at Run entry, in which
	// case it is nil and the per-block tap cost collapses to one
	// nil-check (the obs-overhead guarantee).
	runObs Observer
}

// New builds an engine for the configuration.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, geom: cfg.Geometry, blocks: cfg.Blocks()}
	e.ghr = pht.NewGHR(cfg.HistoryBits)
	pred, err := NewPredictor(cfg)
	if err != nil {
		return nil, err
	}
	e.pred = pred
	if cfg.Selection == metrics.SingleSelection {
		e.bit = bitable.NewBacked(cfg.BITEntries, cfg.Geometry.LineSize, cfg.NearBlock, cfg.Storage)
	}
	switch cfg.TargetArray {
	case BTB:
		e.tgt = target.NewBTB(cfg.TargetEntries, cfg.Geometry.BlockWidth, cfg.BTBAssoc)
	default:
		e.tgt = target.NewNLS(cfg.TargetEntries, cfg.Geometry.BlockWidth, e.blocks)
	}
	e.ras = ras.New(cfg.RASSize)
	if e.blocks > 1 {
		e.st = seltab.NewBacked(cfg.HistoryBits, cfg.NumSTs,
			cfg.Geometry.BlockWidth, cfg.Geometry.LineSize, cfg.NearBlock, cfg.Storage)
	}
	if cfg.ICacheLines > 0 {
		assoc := cfg.ICacheAssoc
		if assoc == 0 {
			assoc = 1
		}
		m, err := icache.NewModel(cfg.ICacheLines, assoc)
		if err != nil {
			return nil, err
		}
		e.icache = m
	}
	e.staleBuf = make([]bitable.Code, cfg.Geometry.BlockWidth)
	e.knownBuf = make([]bool, cfg.Geometry.LineSize)
	return e, nil
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Reset discards all predictor and fetch state, as if freshly built.
func (e *Engine) Reset() {
	fresh, err := New(e.cfg)
	if err != nil {
		panic(fmt.Sprintf("core: Reset of invalid config: %v", err))
	}
	*e = *fresh
}

// Run consumes the trace (resetting it first) and returns the
// accumulated result. The result's Program field is taken from the
// source when it is a named buffer.
func (e *Engine) Run(src trace.Source) metrics.Result {
	e.runObs = e.obs
	if g, ok := e.obs.(ObserverGate); ok && !g.ObserverEnabled() {
		e.runObs = nil
	}
	src.Reset()
	if b, ok := src.(trace.Named); ok {
		e.res.Program = b.TraceName()
	}
	rd := newBlockReader(src, e.geom)
	sh := newSharedBlock(e.geom)
	for {
		blk, ok := rd.next()
		if !ok {
			break
		}
		sh.set(&blk)
		e.consume(&blk, sh)
	}
	out := e.res
	e.res = metrics.Result{Program: e.res.Program}
	return out
}

// consume processes one actual block: accounts the fetch request,
// predicts the block's successor from its BIT/PHT state, verifies any
// select-table involvement, classifies mispredictions, charges Table 3
// penalties and trains every structure. sh carries the block's
// config-independent derived values (lines touched, BIT codes, packed
// conditional outcomes), computed once per block and shared by every
// lane consuming the same stream.
func (e *Engine) consume(blk *block, sh *sharedBlock) {
	dual := e.blocks > 1
	role := e.role
	if !dual {
		role = 0
	}
	var penaltiesBefore [metrics.NumKinds]uint64
	if e.runObs != nil {
		penaltiesBefore = e.res.PenaltyCycles
	}

	e.res.Blocks++
	e.res.Instructions += uint64(blk.n())
	if role == 0 {
		e.res.FetchCycles++
		e.linesA = append(e.linesA[:0], sh.lines...)
		e.accessICache(e.linesA)
		// Snapshot the select-table index of this group: its
		// non-first blocks were predicted from the slot indexed when
		// the group's predecessor was current.
		if e.ringLen > 0 {
			e.cycGHR, e.cycAddr = e.prevGHR, e.addrRing[0]
			e.cycValid = true
		} else {
			e.cycValid = false
		}
	} else {
		// Later block of the group: bank-conflict check against the
		// lines fetched so far this cycle (§3.3, §4.5).
		e.accessICache(sh.lines)
		if e.geom.Conflict(e.linesA, sh.lines) {
			e.res.AddPenalty(metrics.BankConflict,
				metrics.Penalty(metrics.BankConflict, role, e.cfg.Selection))
		}
		e.linesA = append(e.linesA, sh.lines...)
	}

	ghrPre := e.ghr.Value()
	e.pred.Lookup(ghrPre, blk.start)
	trueCodes := sh.trueCodes(e.cfg.NearBlock)

	// Finite-BIT penalty: predict with the (possibly stale or missing)
	// table contents; if that changes the prediction, the fetch logic
	// discovers it one cycle later when the line is decoded (§4.2).
	if e.bit != nil && !e.bit.Perfect() {
		staleCodes, anyStale := e.staleCodes(blk)
		if anyStale {
			ssc := e.scan(blk, staleCodes, e.pred)
			tsc := e.scan(blk, trueCodes, e.pred)
			if ssc.exit != tsc.exit || ssc.sel.Source != tsc.sel.Source {
				e.res.AddPenalty(metrics.BITMispredict,
					metrics.Penalty(metrics.BITMispredict, role, e.cfg.Selection))
			}
		}
	}

	sc := e.scan(blk, trueCodes, e.pred)

	// Tentative role of the successor block if this block's prediction
	// holds: roles cycle through the group; any redirecting penalty
	// restarts the pipeline with a first-role fetch.
	succRole := 0
	if dual && role+1 < e.blocks {
		succRole = role + 1
	}

	predNext, predOK := e.evaluate(blk, sc, succRole)
	kind, redirect, extra := e.classify(blk, sc, predNext, predOK, role)

	if redirect {
		e.res.AddPenalty(kind, metrics.Penalty(kind, role, e.cfg.Selection)+extra)
	}

	// Select-table verification for the successor fetch (§3.1-3.2).
	// Charged only when no redirecting penalty already squashes the
	// pipeline; updates happen regardless.
	condFlip := kind == metrics.CondMispredict && redirect && e.condExitWeak(blk, sc)
	if dual {
		e.verifyST(blk, sc, ghrPre, succRole, redirect, condFlip)
	}

	// Direction statistics and PHT training for every conditional
	// branch in the block (each predicted by its position counter in
	// the entry looked up for this block).
	w := e.geom.BlockWidth
	for j, rec := range blk.insts {
		if rec.Class != isa.ClassPlain {
			e.res.Branches++
		}
		if rec.Class != isa.ClassCond {
			continue
		}
		e.res.CondBranches++
		pos := int(blk.start+uint32(j)) % w
		if e.pred.Taken(pos) != rec.Taken {
			e.res.CondMispredicts++
		}
		e.pred.Update(pos, rec.Taken)
	}

	// Target array training: a redirecting exit whose source is the
	// target array stores its target under every target number — array
	// t indexed by the block t positions back (§3.1's inherent
	// duplication, extended to N blocks).
	if x := blk.exitIdx(); x >= 0 {
		rec := blk.insts[x]
		exitAddr := blk.start + uint32(x)
		if e.usesTargetArray(rec, exitAddr) {
			pos := int(exitAddr) % w
			e.tgt.Update(blk.start, pos, 0, blk.next, rec.Class.IsCall())
			for t := 1; t < e.blocks && t <= e.ringLen; t++ {
				e.tgt.Update(e.addrRing[t-1], pos, t, blk.next, rec.Class.IsCall())
			}
		}
		switch {
		case rec.Class.IsCall():
			e.ras.Push(exitAddr + 1)
		case rec.Class == isa.ClassReturn:
			e.ras.Pop()
		}
	}

	// BIT fill: the fetched line(s) now carry decoded type information.
	e.fillBIT(blk, trueCodes)

	// GHR: shifted once per block with the block's conditional
	// outcomes (§2). The predictor observes the same outcomes, so a
	// strategy whose private history outlives the shared GHR stays in
	// sync with it.
	e.ghr.ShiftPacked(sh.condN, sh.condBits)
	e.pred.Shift(sh.condN, sh.condBits)

	// Carry state for the next block.
	copy(e.addrRing[1:], e.addrRing[:len(e.addrRing)-1])
	e.addrRing[0] = blk.start
	if e.ringLen < len(e.addrRing) {
		e.ringLen++
	}
	e.prevGHR = ghrPre
	if redirect {
		e.role = 0
	} else {
		e.role = succRole
	}

	if e.runObs != nil {
		ev := Event{
			Cycle: e.res.FetchCycles, Block: e.res.Blocks, Role: role,
			Start: blk.start, Len: blk.n(),
			GHR:           ghrPre,
			Selector:      sc.sel,
			PredictedNext: predNext,
			ActualNext:    blk.next,
			Redirect:      redirect,
		}
		if x := blk.exitIdx(); x >= 0 {
			ev.ExitClass = blk.insts[x].Class
		}
		// Report the largest charge attributed to this block.
		for k := metrics.Kind(0); k < metrics.NumKinds; k++ {
			if d := int(e.res.PenaltyCycles[k] - penaltiesBefore[k]); d > ev.Penalty {
				ev.Penalty, ev.Kind = d, k
			}
		}
		e.runObs.Observe(ev)
	}
}

// accessICache probes the optional instruction-cache content model for
// the lines a block reads, charging the configured miss penalty.
func (e *Engine) accessICache(lines []uint32) {
	if e.icache == nil {
		return
	}
	for _, l := range lines {
		if !e.icache.Access(l) {
			e.res.ICacheMisses++
			e.res.ICacheMissCycles += uint64(e.cfg.ICacheMissPenalty)
		}
	}
}

// classify compares the scan's successor prediction against the block's
// actual contents and successor, returning the Table 3 misprediction
// kind, whether it redirects the fetch stream, and any extra penalty
// cycles (the re-fetch adder).
func (e *Engine) classify(blk *block, sc scanResult, predNext uint32, predOK bool, role int) (metrics.Kind, bool, int) {
	actualExit := blk.exitIdx()
	switch {
	case sc.exit < 0 && actualExit < 0:
		return 0, false, 0 // both fall through; addresses agree by construction
	case sc.exit < 0:
		// Predicted to run past an actually taken branch: mispredicted
		// not-taken. The wrongly fetched tail is discarded; no re-fetch
		// adder.
		return metrics.CondMispredict, true, 0
	case actualExit < 0 || sc.exit < actualExit:
		// Predicted taken at a branch that was not taken (or typed a
		// transfer where none redirected). Remaining instructions of
		// the block must be re-fetched (Table 3 footnote, first block
		// only; the second block's +1 is already in its base penalty).
		extra := 0
		if role == 0 && sc.exit < blk.n()-1 {
			extra = metrics.RefetchAdder
		}
		return metrics.CondMispredict, true, extra
	default:
		// Exit position agrees; direction is right, check the target.
		rec := blk.insts[sc.exit]
		if predOK && predNext == blk.next {
			return 0, false, 0
		}
		switch rec.Class {
		case isa.ClassReturn:
			return metrics.ReturnMispredict, true, 0
		case isa.ClassIndirect, isa.ClassIndirectCall:
			return metrics.MisfetchIndirect, true, 0
		default:
			// Direct targets (conditional, jump, call) are recomputed
			// from the instruction as soon as it is decoded.
			return metrics.MisfetchImmediate, true, 0
		}
	}
}

// condExitWeak reports whether the classified conditional misprediction
// happened on a branch without a "second chance" (weak counter state),
// in which case the BBR's replacement selector is written to the select
// table (§3.3). Reads the predictor's state for the latched block.
func (e *Engine) condExitWeak(blk *block, sc scanResult) bool {
	idx := sc.exit
	if idx < 0 {
		idx = blk.exitIdx()
	}
	if idx < 0 || blk.insts[idx].Class != isa.ClassCond {
		return false
	}
	pos := int(blk.start+uint32(idx)) % e.geom.BlockWidth
	return !e.pred.SecondChance(pos)
}

// verifyST checks the memoized selector that launched (or, with double
// selection, will launch) this block's successor fetch against the
// freshly computed scan, charging misselect and GHR penalties and
// updating the table (§3.1-3.3).
func (e *Engine) verifyST(blk *block, sc scanResult, ghrPre uint32, succRole int, squashed, condFlip bool) {
	var ref seltab.Ref
	role := succRole
	switch {
	case succRole >= 1:
		// The successor is a non-first block of the current group; it
		// was selected from the slot indexed when the group's
		// predecessor block was current.
		if !e.cycValid {
			return
		}
		ref = e.st.At(e.cycGHR, e.cycAddr)
	case e.cfg.Selection == metrics.DoubleSelection:
		// With double selection the first block of the next cycle also
		// comes from the (dual) select table, indexed by this block.
		ref = e.st.At(ghrPre, blk.start)
	default:
		return // single selection computes first-role fetches directly
	}

	valid := ref.Valid()
	slot := ref.Get(role)
	mismatchMux := !valid || !slot.SameMux(sc.sel)
	mismatchGHR := !valid || !slot.SameGHR(sc.sel)
	if !squashed {
		if mismatchMux {
			e.res.AddPenalty(metrics.Misselect,
				metrics.Penalty(metrics.Misselect, succRole, e.cfg.Selection))
		} else if mismatchGHR {
			e.res.AddPenalty(metrics.GHRMispredict,
				metrics.Penalty(metrics.GHRMispredict, succRole, e.cfg.Selection))
		}
	}
	if mismatchMux || mismatchGHR {
		ref.Set(role, sc.sel)
	}
	if condFlip {
		// Bad branch recovery: the mispredicted branch will predict
		// differently next time, so install the pre-computed
		// replacement selector now.
		ref.Set(role, e.correctedSelector(blk))
	}
}

// usesTargetArray reports whether the exit instruction's target is
// stored in the target array (Table 1): returns use the RAS, near-block
// conditionals are computed, everything else redirecting uses the array.
func (e *Engine) usesTargetArray(rec cpu.Retired, exitAddr uint32) bool {
	switch rec.Class {
	case isa.ClassReturn:
		return false
	case isa.ClassCond:
		code := bitable.Encode(rec.Class, exitAddr, rec.Target, e.geom.LineSize, e.cfg.NearBlock)
		return !code.IsNear()
	default:
		return true
	}
}

// staleCodes materializes the BIT table's current contents for the
// block's positions into the engine's stale scratch buffer (valid until
// the next call) and reports whether any covering entry is stale or
// missing.
func (e *Engine) staleCodes(blk *block) ([]bitable.Code, bool) {
	anyStale := false
	lineSize := uint32(e.geom.LineSize)
	firstLine := e.geom.LineOf(blk.start)
	lastLine := e.geom.LineOf(blk.start + uint32(blk.n()) - 1)
	var codesA, codesB []bitable.Code
	for l := firstLine; l <= lastLine; l++ {
		codes, fresh := e.bit.Lookup(l * lineSize)
		if !fresh {
			anyStale = true
		}
		if l == firstLine {
			codesA = codes
		} else {
			codesB = codes
		}
	}
	out := e.staleBuf[:blk.n()]
	for j := range out {
		addr := blk.start + uint32(j)
		codes := codesA
		if e.geom.LineOf(addr) != firstLine {
			codes = codesB
		}
		if codes == nil {
			out[j] = bitable.CodePlain
		} else {
			out[j] = codes[addr%lineSize]
		}
	}
	return out, anyStale
}

// fillBIT installs the block's decoded type codes into the BIT table.
func (e *Engine) fillBIT(blk *block, trueCodes []bitable.Code) {
	if e.bit == nil || e.bit.Perfect() {
		return
	}
	lineSize := uint32(e.geom.LineSize)
	firstLine := e.geom.LineOf(blk.start)
	lastLine := e.geom.LineOf(blk.start + uint32(blk.n()) - 1)
	if e.lineCodeBuf == nil {
		e.lineCodeBuf = make([]bitable.Code, e.geom.LineSize)
	}
	lineCodes := e.lineCodeBuf
	for l := firstLine; l <= lastLine; l++ {
		known := e.knownBuf
		for i := range known {
			known[i] = false
		}
		for i := range lineCodes {
			lineCodes[i] = bitable.CodePlain
		}
		for j := range blk.insts {
			addr := blk.start + uint32(j)
			if e.geom.LineOf(addr) == l {
				off := addr % lineSize
				lineCodes[off] = trueCodes[j]
				known[off] = true
			}
		}
		e.bit.Fill(l*lineSize, lineCodes, known)
	}
}
