package core

import (
	"fmt"

	"mbbp/internal/bitable"
	"mbbp/internal/icache"
	"mbbp/internal/metrics"
	"mbbp/internal/trace"
)

// Config-parallel lanes: one trace walk drives N predictor instances in
// lockstep. The block stream — and everything derived from the block
// alone — depends only on the cache geometry, not on predictor
// configuration, so a LaneSet hoists that work out of the per-config
// loop: decode and block formation run once per block (newBlockReader),
// and the per-block derived values (lines touched, decoded BIT codes,
// packed conditional outcomes) are computed once in a sharedBlock and
// consumed by every lane. All predictor state (PHT, BIT, select tables,
// target arrays, RAS, GHR, carried fetch state) stays per-lane, so each
// lane's result is byte-identical to running its engine alone.

// sharedBlock carries the per-block values that are a pure function of
// (block, geometry) — identical for every lane of a set — so they are
// computed once per block instead of once per (block, lane). A single
// engine Run uses one too; the single-lane cost is the same work the
// engine previously did per block, just hoisted.
type sharedBlock struct {
	geom icache.Geometry
	blk  *block

	// lines is the geometry's LinesTouched for the block.
	lines []uint32
	// condN/condBits are the block's packed conditional outcomes (GHR
	// shift material).
	condN    int
	condBits uint32

	// codes hold the decoded BIT codes for the block, by the NearBlock
	// flag (the only configuration bit that changes the encoding at a
	// fixed geometry). Computed lazily: a homogeneous lane set touches
	// one variant.
	codes   [2][]bitable.Code
	codesOK [2]bool
}

func newSharedBlock(geom icache.Geometry) *sharedBlock {
	return &sharedBlock{
		geom: geom,
		codes: [2][]bitable.Code{
			make([]bitable.Code, geom.BlockWidth),
			make([]bitable.Code, geom.BlockWidth),
		},
	}
}

// set points the shared state at the next block and computes the
// unconditionally needed values (lines, conditional outcomes).
func (sh *sharedBlock) set(blk *block) {
	sh.blk = blk
	sh.lines = sh.geom.LinesTouched(sh.lines[:0], blk.start, blk.n())
	sh.condN, sh.condBits = blk.condOutcomes()
	sh.codesOK[0], sh.codesOK[1] = false, false
}

// trueCodes returns the correct BIT codes for the block under the given
// near-block encoding, computing them on first request. The returned
// slice is valid until the next set call.
func (sh *sharedBlock) trueCodes(near bool) []bitable.Code {
	i := 0
	if near {
		i = 1
	}
	codes := sh.codes[i][:sh.blk.n()]
	if !sh.codesOK[i] {
		for j, rec := range sh.blk.insts {
			codes[j] = bitable.Encode(rec.Class, sh.blk.start+uint32(j), rec.Target,
				sh.geom.LineSize, near)
		}
		sh.codesOK[i] = true
	}
	return codes
}

// LaneSet drives several engines — one per configuration — over a
// single decoded block stream. Every configuration must share the same
// cache geometry (block formation is a function of the geometry); the
// rest of the configuration is free to vary per lane. Results are
// byte-identical to running each engine independently over the same
// source.
type LaneSet struct {
	lanes []*Engine
	geom  icache.Geometry
}

// NewLanes builds one engine per configuration and checks that the set
// can share a block stream. At least one configuration is required, and
// all must validate and agree on Geometry.
func NewLanes(cfgs []Config) (*LaneSet, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("core: NewLanes: no configurations")
	}
	ls := &LaneSet{lanes: make([]*Engine, len(cfgs)), geom: cfgs[0].Geometry}
	for i, cfg := range cfgs {
		if cfg.Geometry != ls.geom {
			return nil, fmt.Errorf("core: NewLanes: lane %d geometry %+v differs from lane 0 %+v (block formation is shared; group configurations by geometry)",
				i, cfg.Geometry, ls.geom)
		}
		e, err := New(cfg)
		if err != nil {
			return nil, fmt.Errorf("core: NewLanes: lane %d: %w", i, err)
		}
		ls.lanes[i] = e
	}
	return ls, nil
}

// Lanes returns the per-lane engines, in configuration order. Useful
// for installing observers (Engine.SetObserver) before Run.
func (ls *LaneSet) Lanes() []*Engine { return ls.lanes }

// Run consumes the trace (resetting it first) exactly once, feeding
// every block to each lane in lane order, and returns the accumulated
// per-lane results in configuration order. Each result is identical to
// what that lane's engine would have returned from its own Run over the
// same source.
func (ls *LaneSet) Run(src trace.Source) []metrics.Result {
	name := ""
	named := false
	if b, ok := src.(trace.Named); ok {
		name, named = b.TraceName(), true
	}
	for _, e := range ls.lanes {
		e.runObs = e.obs
		if g, ok := e.obs.(ObserverGate); ok && !g.ObserverEnabled() {
			e.runObs = nil
		}
		if named {
			e.res.Program = name
		}
	}
	src.Reset()
	rd := newBlockReader(src, ls.geom)
	sh := newSharedBlock(ls.geom)
	for {
		blk, ok := rd.next()
		if !ok {
			break
		}
		sh.set(&blk)
		for _, e := range ls.lanes {
			e.consume(&blk, sh)
		}
	}
	out := make([]metrics.Result, len(ls.lanes))
	for i, e := range ls.lanes {
		out[i] = e.res
		e.res = metrics.Result{Program: e.res.Program}
	}
	return out
}
