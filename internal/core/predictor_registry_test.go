package core_test

import (
	"errors"
	"strings"
	"testing"

	"mbbp/internal/core"
)

// The registry surface feeds the CLI flag, the config JSON field and
// the mbbpd discovery endpoint; these pin its small contracts.

func TestPredictorKindStrings(t *testing.T) {
	cases := []struct {
		kind  core.PredictorKind
		str   string
		valid bool
	}{
		{core.PredictorPaper, "paper", true},
		{core.PredictorTAGE, "tage", true},
		{core.PredictorKind(9), "predictor(9)", false},
	}
	for _, c := range cases {
		if got := c.kind.String(); got != c.str {
			t.Errorf("String(%d) = %q, want %q", int(c.kind), got, c.str)
		}
		if got := c.kind.Valid(); got != c.valid {
			t.Errorf("Valid(%d) = %v, want %v", int(c.kind), got, c.valid)
		}
	}
}

func TestParsePredictorKind(t *testing.T) {
	for kind, name := range map[core.PredictorKind]string{
		core.PredictorPaper: "paper",
		core.PredictorTAGE:  "tage",
	} {
		got, err := core.ParsePredictorKind(name)
		if err != nil || got != kind {
			t.Errorf("ParsePredictorKind(%q) = %v, %v; want %v", name, got, err, kind)
		}
	}
	_, err := core.ParsePredictorKind("2bit")
	if err == nil {
		t.Fatal("ParsePredictorKind accepted an unknown spelling")
	}
	// The error must name the bad value and every known spelling so the
	// CLI/server message is self-serve.
	for _, want := range []string{`"2bit"`, "paper", "tage"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q should mention %s", err, want)
		}
	}
}

func TestRegisteredPredictors(t *testing.T) {
	infos := core.RegisteredPredictors()
	if len(infos) != 2 {
		t.Fatalf("got %d registered predictors, want 2: %+v", len(infos), infos)
	}
	for i, info := range infos {
		if int(info.Kind) != i {
			t.Errorf("entry %d has kind %v; want kind order", i, info.Kind)
		}
		if info.Name != info.Kind.String() {
			t.Errorf("entry %d: name %q != kind string %q", i, info.Name, info.Kind.String())
		}
		if info.Description == "" || info.Defaults == nil {
			t.Errorf("entry %d (%s): missing description or defaults", i, info.Name)
		}
	}
}

func TestRegisterPredictorRejectsDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("re-registering an existing kind should panic")
		}
	}()
	core.RegisterPredictor(core.PredictorInfo{Kind: core.PredictorPaper},
		func(core.Config) (core.Predictor, error) { return nil, nil })
}

func TestNewPredictorUnknownKind(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Predictor = core.PredictorKind(9)
	_, err := core.NewPredictor(cfg)
	if err == nil {
		t.Fatal("NewPredictor built an unregistered kind")
	}
	var fe *core.FieldError
	if !errors.As(err, &fe) || fe.Field != "Predictor" {
		t.Errorf("want FieldError on Predictor, got %v", err)
	}
}

// TestPredictorSurface covers the per-strategy odds and ends the
// conformance driver does not reach: Kind round-trips, and the paper
// strategy's Shift is a no-op (it reads the engine's shared GHR at
// Lookup time instead of keeping private history).
func TestPredictorSurface(t *testing.T) {
	for _, kind := range []core.PredictorKind{core.PredictorPaper, core.PredictorTAGE} {
		cfg := core.DefaultConfig()
		cfg.Predictor = kind
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
		p, err := core.NewPredictor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if p.Kind() != kind {
			t.Errorf("built %v, Kind() says %v", kind, p.Kind())
		}
		p.Lookup(0, 0)
		before := p.Taken(0)
		p.Shift(1, 1)
		if kind == core.PredictorPaper {
			p.Lookup(0, 0) // same GHR value: Shift alone must not move the paper strategy
			if p.Taken(0) != before {
				t.Error("paper Shift changed prediction state")
			}
		}
	}
}

// TestEngineConfigAccessor pins that an engine reports the validated
// configuration it was built from, for both predictor families.
func TestEngineConfigAccessor(t *testing.T) {
	for _, kind := range []core.PredictorKind{core.PredictorPaper, core.PredictorTAGE} {
		cfg := core.DefaultConfig()
		cfg.Predictor = kind
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
		e, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := e.Config().Predictor; got != kind {
			t.Errorf("Config().Predictor = %v, want %v", got, kind)
		}
	}
}
