package core

import (
	"mbbp/internal/isa"
	"mbbp/internal/packed"
	"mbbp/internal/pht"
	"mbbp/internal/trace"
)

// ScalarResult reports the conditional-branch accuracy of the scalar
// baseline predictor.
type ScalarResult struct {
	Program         string
	CondBranches    uint64
	CondMispredicts uint64
}

// MispredictRate returns the fraction of conditional branches
// mispredicted.
func (r ScalarResult) MispredictRate() float64 {
	if r.CondBranches == 0 {
		return 0
	}
	return float64(r.CondMispredicts) / float64(r.CondBranches)
}

// Add accumulates other into r.
func (r *ScalarResult) Add(other ScalarResult) {
	r.CondBranches += other.CondBranches
	r.CondMispredicts += other.CondMispredicts
}

// RunScalar measures the Figure 6 baseline: a scalar two-level adaptive
// predictor with numTables per-address pattern history tables (8 tables
// makes it equal in size to a blocked PHT with W = 8), predicting one
// conditional branch at a time with a per-branch-updated global history
// register.
func RunScalar(src trace.Source, historyBits, numTables int) ScalarResult {
	return RunScalarBacked(src, historyBits, numTables, packed.BackingPacked)
}

// RunScalarBacked is RunScalar with an explicit counter storage backing
// (the differential tests pin packed against reference here too).
func RunScalarBacked(src trace.Source, historyBits, numTables int, backing packed.Backing) ScalarResult {
	src.Reset()
	var res ScalarResult
	if b, ok := src.(trace.Named); ok {
		res.Program = b.TraceName()
	}
	p := pht.NewScalarBacked(historyBits, numTables, backing)
	g := pht.NewGHR(historyBits)
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		if r.Class != isa.ClassCond {
			continue
		}
		res.CondBranches++
		if p.Predict(g.Value(), r.PC) != r.Taken {
			res.CondMispredicts++
		}
		p.Update(g.Value(), r.PC, r.Taken)
		g.Shift(r.Taken)
	}
	return res
}
