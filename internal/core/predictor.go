package core

import (
	"fmt"
	"sort"
	"strings"

	"mbbp/internal/pht"
)

// The engine's block-level direction prediction is a strategy: given
// the shared global history and a fetch block's starting address, the
// predictor answers, per instruction position of the block, "would the
// conditional branch at this position be taken?" — plus the strength
// ("second chance") bit the bad-branch-recovery logic reads, and a
// training write per resolved branch. The paper's blocked PHT is the
// first implementation (paperPredictor below); internal/tage plugs a
// tagged-geometric family into the same contract. Everything else in
// the engine — BIT scanning, select tables, target arrays, RAS,
// penalty accounting — is common machinery shared by every strategy.

// Predictor is the block-level direction-prediction strategy. An
// engine owns exactly one instance and drives it single-threaded, one
// block at a time:
//
//	p.Lookup(ghr, blockStart)        // latch the block
//	p.Taken(pos), p.SecondChance(pos) // read predictions (pure)
//	p.Update(pos, taken)             // train resolved branches
//	p.Shift(n, bits)                 // observe the block's outcomes
//
// Lookup latches one fetch block; Taken, SecondChance and Update then
// address instruction positions of that block (the engine's position
// convention: instruction address mod block width). Reads must be free
// of side effects on predictor state so the engine may interleave and
// repeat them (the finite-BIT stale scan predicts the same block
// several times). Update may mutate freely; its effects on subsequent
// reads of the same latched block are implementation-defined but must
// be deterministic. Shift delivers the block's packed conditional
// outcomes in the pht.GHR.ShiftPacked convention (bit n-1 oldest) —
// strategies whose history outlives the shared GHR extend it here.
type Predictor interface {
	// Kind identifies the strategy family.
	Kind() PredictorKind
	// Lookup latches the fetch block starting at blockAddr under the
	// shared global-history value.
	Lookup(history, blockAddr uint32)
	// Taken predicts the direction of a conditional branch at the given
	// position of the latched block.
	Taken(pos int) bool
	// SecondChance reports whether the prediction at pos is strong —
	// one misprediction will not flip its direction (paper Table 2).
	SecondChance(pos int) bool
	// Update trains the predictor with the resolved outcome of the
	// branch at pos of the latched block.
	Update(pos int, taken bool)
	// Shift observes the latched block's packed conditional outcomes
	// (same convention as pht.GHR.ShiftPacked).
	Shift(n int, bits uint32)
	// StateBits returns the strategy's storage cost in bits, by the
	// paper's Table 7 accounting (logical bits, not padded words).
	StateBits() int
	// Reset discards all predictor state, as if freshly built.
	Reset()
	// CounterStates buckets every direction counter into the four
	// 2-bit-counter classes (strongly-NT, weakly-NT, weakly-T,
	// strongly-T) for structure statistics; wider counters map by
	// direction and strength.
	CounterStates() [4]uint64
}

// PredictorKind selects a direction-prediction strategy family.
type PredictorKind int

const (
	// PredictorPaper is the paper's blocked pattern history table
	// (§2; one 2-bit counter per block position, gshare-indexed).
	PredictorPaper PredictorKind = iota
	// PredictorTAGE is the tagged-geometric multiple-branch predictor
	// (internal/tage): N tagged tables with geometric history lengths,
	// XOR-folded tags, 3-bit counters and useful-bit victim selection.
	PredictorTAGE
)

// predictorKindNames is the canonical spelling of each kind, used by
// String, ParsePredictorKind and the CLI/server surfaces.
var predictorKindNames = map[PredictorKind]string{
	PredictorPaper: "paper",
	PredictorTAGE:  "tage",
}

func (k PredictorKind) String() string {
	if s, ok := predictorKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("predictor(%d)", int(k))
}

// Valid reports whether k is a known kind (registered or not).
func (k PredictorKind) Valid() bool {
	_, ok := predictorKindNames[k]
	return ok
}

// ParsePredictorKind resolves the canonical kind spelling ("paper",
// "tage"); the error names the bad value and the known spellings.
func ParsePredictorKind(s string) (PredictorKind, error) {
	for k, name := range predictorKindNames {
		if name == s {
			return k, nil
		}
	}
	known := make([]string, 0, len(predictorKindNames))
	for _, name := range predictorKindNames {
		known = append(known, name)
	}
	sort.Strings(known)
	return 0, fmt.Errorf("unknown predictor kind %q (want %s)", s, strings.Join(known, " or "))
}

// PredictorInfo describes one registered strategy for discovery
// surfaces (mbbpd GET /v1/predictors, CLI help).
type PredictorInfo struct {
	Kind        PredictorKind `json:"kind"`
	Name        string        `json:"name"`
	Description string        `json:"description"`
	// Defaults carries the strategy's default parameters as a
	// JSON-marshalable value (a config fragment).
	Defaults any `json:"defaults"`
}

type predictorEntry struct {
	info  PredictorInfo
	build func(Config) (Predictor, error)
}

var predictorReg = map[PredictorKind]predictorEntry{}

// RegisterPredictor installs a strategy factory. Called from package
// init functions only (the paper predictor here; internal/tage
// registers itself on import) — the registry is not synchronized.
func RegisterPredictor(info PredictorInfo, build func(Config) (Predictor, error)) {
	if _, dup := predictorReg[info.Kind]; dup {
		panic(fmt.Sprintf("core: RegisterPredictor: kind %s registered twice", info.Kind))
	}
	info.Name = info.Kind.String()
	predictorReg[info.Kind] = predictorEntry{info: info, build: build}
}

// RegisteredPredictors lists the linked strategies in kind order.
func RegisteredPredictors() []PredictorInfo {
	out := make([]PredictorInfo, 0, len(predictorReg))
	for _, e := range predictorReg {
		out = append(out, e.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// NewPredictor builds the configured strategy for a validated
// configuration. An unknown kind fails Validate first; a known kind
// whose implementation is not linked into the binary reports a
// FieldError naming the kind.
func NewPredictor(cfg Config) (Predictor, error) {
	e, ok := predictorReg[cfg.Predictor]
	if !ok {
		return nil, badField("Predictor", "kind %s is not linked into this binary", cfg.Predictor)
	}
	return e.build(cfg)
}

func init() {
	RegisterPredictor(PredictorInfo{
		Kind:        PredictorPaper,
		Description: "blocked pattern history table (HPCA'97 §2): one gshare-indexed entry of W 2-bit counters predicts every conditional branch position of a fetch block",
		Defaults: map[string]int{
			"HistoryBits": 10,
			"NumPHTs":     1,
		},
	}, func(cfg Config) (Predictor, error) {
		return newPaperPredictor(cfg), nil
	})
}

// paperPredictor adapts the paper's blocked PHT to the Predictor
// contract. Lookup resolves one entry handle (all W counters of the
// block, one packed word); the per-position calls are the same direct
// counter operations the engine previously issued on the handle, so
// results are bit-for-bit what the pre-interface engine produced.
type paperPredictor struct {
	tab   *pht.Blocked
	entry pht.Entry

	// rebuild parameters for Reset.
	cfg Config
}

func newPaperPredictor(cfg Config) *paperPredictor {
	p := &paperPredictor{cfg: cfg}
	p.tab = pht.NewBlockedBacked(cfg.HistoryBits, cfg.Geometry.BlockWidth,
		cfg.numPHTs(), cfg.IndexMode, cfg.Storage)
	p.entry = p.tab.At(0)
	return p
}

func (p *paperPredictor) Kind() PredictorKind { return PredictorPaper }

func (p *paperPredictor) Lookup(history, blockAddr uint32) {
	p.entry = p.tab.At(p.tab.Index(history, blockAddr))
}

func (p *paperPredictor) Taken(pos int) bool         { return p.entry.Taken(pos) }
func (p *paperPredictor) SecondChance(pos int) bool  { return p.entry.SecondChance(pos) }
func (p *paperPredictor) Update(pos int, taken bool) { p.entry.Update(pos, taken) }
func (p *paperPredictor) Shift(n int, bits uint32)   {} // reads the shared GHR via Lookup

func (p *paperPredictor) StateBits() int { return p.tab.StateBits() }

func (p *paperPredictor) Reset() { *p = *newPaperPredictor(p.cfg) }

func (p *paperPredictor) CounterStates() [4]uint64 {
	var dist [4]uint64
	for i := 0; i < p.tab.Entries(); i++ {
		for pos := 0; pos < p.tab.Width(); pos++ {
			dist[p.tab.CounterAt(uint32(i), pos)&3]++
		}
	}
	return dist
}
