package core

import (
	"testing"

	"mbbp/internal/icache"
	"mbbp/internal/isa"
	"mbbp/internal/metrics"
	"mbbp/internal/trace"
)

// loopTrace builds a steady two-block loop: block A at 0..7 ending in a
// taken jump to 16, block B at 16..23 ending in a taken jump back to 0,
// repeated n times. Under dual-block fetching this is one fetch request
// per iteration once warm.
func loopTrace(n int) *trace.Buffer {
	var rs []rec
	for i := 0; i < n; i++ {
		for pc := uint32(0); pc < 7; pc++ {
			rs = append(rs, rec{pc, isa.ClassPlain, false, 0})
		}
		rs = append(rs, rec{7, isa.ClassJump, true, 16})
		for pc := uint32(16); pc < 23; pc++ {
			rs = append(rs, rec{pc, isa.ClassPlain, false, 0})
		}
		rs = append(rs, rec{23, isa.ClassJump, true, 0})
	}
	return mkTrace(rs)
}

func TestDualBlockSteadyState(t *testing.T) {
	cfg := DefaultConfig()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run(loopTrace(500))
	// 1000 blocks in 500 cycles once warm; allow a small cold-start
	// margin.
	if res.Blocks != 1000 {
		t.Fatalf("blocks = %d", res.Blocks)
	}
	if res.FetchCycles > 510 {
		t.Errorf("fetch cycles = %d, want ~500 (two blocks per request)", res.FetchCycles)
	}
	// Steady state: the only penalties are cold-start (bounded).
	if p := res.TotalPenaltyCycles(); p > 40 {
		t.Errorf("steady-state loop accumulated %d penalty cycles", p)
	}
	// Misselects happen only during warmup.
	if res.PenaltyEvents[metrics.Misselect] > 4 {
		t.Errorf("misselect events = %d, want cold-start only", res.PenaltyEvents[metrics.Misselect])
	}
	if got := res.IPCf(); got < 15 {
		t.Errorf("IPC_f = %.2f, want near 16 (two 8-wide blocks per cycle)", got)
	}
}

func TestSingleBlockSameLoop(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = SingleBlock
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run(loopTrace(500))
	if res.FetchCycles != 1000 {
		t.Errorf("single-block fetch cycles = %d, want 1000", res.FetchCycles)
	}
	if got := res.IPCf(); got < 7.5 || got > 8 {
		t.Errorf("single-block IPC_f = %.2f, want near 8", got)
	}
}

// TestBankConflictCharged builds a dual fetch whose two blocks collide
// in a bank: block A in line 0 and block B in line 8 (8 banks -> both
// bank 0).
func TestBankConflictCharged(t *testing.T) {
	var rs []rec
	for i := 0; i < 100; i++ {
		for pc := uint32(0); pc < 7; pc++ {
			rs = append(rs, rec{pc, isa.ClassPlain, false, 0})
		}
		rs = append(rs, rec{7, isa.ClassJump, true, 64}) // line 8, bank 0
		for pc := uint32(64); pc < 71; pc++ {
			rs = append(rs, rec{pc, isa.ClassPlain, false, 0})
		}
		rs = append(rs, rec{71, isa.ClassJump, true, 0})
	}
	e, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run(mkTrace(rs))
	if res.PenaltyEvents[metrics.BankConflict] < 90 {
		t.Errorf("bank conflicts = %d, want ~100 (every pair collides)",
			res.PenaltyEvents[metrics.BankConflict])
	}

	// The same loop with the blocks in conflict-free lines: line 0 and
	// line 1.
	var ok []rec
	for i := 0; i < 100; i++ {
		for pc := uint32(0); pc < 7; pc++ {
			ok = append(ok, rec{pc, isa.ClassPlain, false, 0})
		}
		ok = append(ok, rec{7, isa.ClassJump, true, 8})
		for pc := uint32(8); pc < 15; pc++ {
			ok = append(ok, rec{pc, isa.ClassPlain, false, 0})
		}
		ok = append(ok, rec{15, isa.ClassJump, true, 0})
	}
	e2, _ := New(DefaultConfig())
	res2 := e2.Run(mkTrace(ok))
	if res2.PenaltyEvents[metrics.BankConflict] != 0 {
		t.Errorf("conflict-free loop charged %d bank conflicts",
			res2.PenaltyEvents[metrics.BankConflict])
	}
}

// TestMisselectOnPatternChange alternates a branch's behavior between
// long epochs: each flip makes the memoized second-block selector stale,
// costing misselects until retrained.
func TestMisselectOnPatternChange(t *testing.T) {
	var rs []rec
	addBlock := func(takenEpoch bool) {
		// Block A: 0..7, exits via a conditional at 7 that either
		// falls through to 8.. or jumps to 16...
		for pc := uint32(0); pc < 7; pc++ {
			rs = append(rs, rec{pc, isa.ClassPlain, false, 0})
		}
		if takenEpoch {
			rs = append(rs, rec{7, isa.ClassCond, true, 16})
			for pc := uint32(16); pc < 23; pc++ {
				rs = append(rs, rec{pc, isa.ClassPlain, false, 0})
			}
			rs = append(rs, rec{23, isa.ClassJump, true, 0})
		} else {
			rs = append(rs, rec{7, isa.ClassCond, false, 16})
			for pc := uint32(8); pc < 15; pc++ {
				rs = append(rs, rec{pc, isa.ClassPlain, false, 0})
			}
			rs = append(rs, rec{15, isa.ClassJump, true, 0})
		}
	}
	for epoch := 0; epoch < 10; epoch++ {
		for i := 0; i < 50; i++ {
			addBlock(epoch%2 == 0)
		}
	}
	e, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run(mkTrace(rs))
	if res.PenaltyEvents[metrics.Misselect] == 0 {
		t.Error("epoch flips should cause misselects")
	}
	if res.PenaltyEvents[metrics.CondMispredict] == 0 {
		t.Error("epoch flips should cause conditional mispredictions")
	}
	// But misselects must be rare relative to blocks (only at epoch
	// boundaries).
	if res.PenaltyEvents[metrics.Misselect] > res.Blocks/10 {
		t.Errorf("misselects = %d of %d blocks: too many",
			res.PenaltyEvents[metrics.Misselect], res.Blocks)
	}
}

func TestDoubleSelectionRunsAndCostsMore(t *testing.T) {
	tr := loopTrace(300)

	single, _ := New(DefaultConfig())
	rs := single.Run(tr)

	dcfg := DefaultConfig()
	dcfg.Selection = metrics.DoubleSelection
	double, err := New(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	rd := double.Run(tr)

	if rd.Instructions != rs.Instructions {
		t.Fatalf("instruction counts differ: %d vs %d", rd.Instructions, rs.Instructions)
	}
	// Double selection pays more on this warmup-heavy loop (misselect
	// penalties on both blocks) but must still reach a high rate.
	if rd.IPCf() < 10 {
		t.Errorf("double selection IPC_f = %.2f, implausibly low", rd.IPCf())
	}
	if rd.TotalPenaltyCycles() < rs.TotalPenaltyCycles() {
		t.Errorf("double selection penalties (%d) below single (%d)",
			rd.TotalPenaltyCycles(), rs.TotalPenaltyCycles())
	}
}

// TestRASThroughEngine runs call/return pairs through the engine and
// checks returns are predicted by the stack (no return mispredicts in
// steady state).
func TestRASThroughEngine(t *testing.T) {
	var rs []rec
	for i := 0; i < 200; i++ {
		// main at 0: call fn at 32 from address 3; fn returns to 4;
		// jump back to 0.
		rs = append(rs,
			rec{0, isa.ClassPlain, false, 0},
			rec{1, isa.ClassPlain, false, 0},
			rec{2, isa.ClassPlain, false, 0},
			rec{3, isa.ClassCall, true, 32},
			rec{32, isa.ClassPlain, false, 0},
			rec{33, isa.ClassReturn, true, 4},
			rec{4, isa.ClassPlain, false, 0},
			rec{5, isa.ClassJump, true, 0},
		)
	}
	e, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run(mkTrace(rs))
	if res.PenaltyEvents[metrics.ReturnMispredict] > 2 {
		t.Errorf("return mispredicts = %d, want ~0 (RAS covers this)",
			res.PenaltyEvents[metrics.ReturnMispredict])
	}
}

// TestIndirectPolymorphismCostsMisfetches drives an indirect jump that
// alternates between two targets: the target array can never hold both,
// so roughly half the transits misfetch.
func TestIndirectPolymorphismCostsMisfetches(t *testing.T) {
	var rs []rec
	for i := 0; i < 200; i++ {
		tgt := uint32(32)
		if i%2 == 1 {
			tgt = 48
		}
		rs = append(rs,
			rec{0, isa.ClassPlain, false, 0},
			rec{1, isa.ClassIndirect, true, tgt},
			rec{tgt, isa.ClassPlain, false, 0},
			rec{tgt + 1, isa.ClassJump, true, 0},
		)
	}
	cfg := DefaultConfig()
	cfg.Mode = SingleBlock
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run(mkTrace(rs))
	if res.PenaltyEvents[metrics.MisfetchIndirect] < 150 {
		t.Errorf("indirect misfetches = %d, want ~199 (alternating target)",
			res.PenaltyEvents[metrics.MisfetchIndirect])
	}
}

// TestNearBlockAvoidsTargetArray checks a short-range conditional
// branch never misfetches with near-block encoding even under an
// adversarial 1-entry target array, but can without it.
func TestNearBlockAvoidsTargetArray(t *testing.T) {
	mk := func() *trace.Buffer {
		var rs []rec
		for i := 0; i < 100; i++ {
			// Three single-instruction blocks whose exits all sit at
			// position 0, thrashing the single slot of a 1-entry NLS.
			// With near-block encoding the conditional stays out of
			// the array, so one misfetch per iteration disappears.
			rs = append(rs,
				rec{0, isa.ClassCond, true, 8},   // near: next line
				rec{8, isa.ClassJump, true, 256}, // long
				rec{256, isa.ClassJump, true, 0}, // long
			)
		}
		return mkTrace(rs)
	}
	run := func(near bool) metrics.Result {
		cfg := DefaultConfig()
		cfg.Mode = SingleBlock
		cfg.NearBlock = near
		cfg.TargetEntries = 1
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e.Run(mk())
	}
	with := run(true)
	without := run(false)
	if with.PenaltyEvents[metrics.MisfetchImmediate] >= without.PenaltyEvents[metrics.MisfetchImmediate] {
		t.Errorf("near-block misfetches (%d) should be below long-only (%d)",
			with.PenaltyEvents[metrics.MisfetchImmediate],
			without.PenaltyEvents[metrics.MisfetchImmediate])
	}
}

// TestRefetchAdder checks the Table 3 footnote: a first-block
// conditional mispredicted taken with remaining instructions costs 5
// cycles, while mispredicted not-taken costs 4.
func TestRefetchAdder(t *testing.T) {
	// Train a branch taken, then present it not taken mid-block:
	// mispredicted taken, remaining instructions must be re-fetched.
	var rs []rec
	for i := 0; i < 20; i++ {
		rs = append(rs,
			rec{0, isa.ClassPlain, false, 0},
			rec{1, isa.ClassCond, true, 32},
			rec{32, isa.ClassJump, true, 0},
		)
	}
	// Now the branch falls through once, with instructions after it.
	rs = append(rs,
		rec{0, isa.ClassPlain, false, 0},
		rec{1, isa.ClassCond, false, 32},
		rec{2, isa.ClassPlain, false, 0},
		rec{3, isa.ClassJump, true, 0},
	)
	cfg := DefaultConfig()
	cfg.Mode = SingleBlock
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run(mkTrace(rs))
	// The final mispredict should include the +1 re-fetch adder: look
	// for a 5-cycle conditional penalty among the charges.
	cond := res.PenaltyCycles[metrics.CondMispredict]
	events := res.PenaltyEvents[metrics.CondMispredict]
	if events == 0 {
		t.Fatal("expected at least one conditional mispredict")
	}
	if cond < events*4+1 {
		t.Errorf("cond penalty cycles = %d over %d events: no re-fetch adder applied",
			cond, events)
	}
}

// TestSelfAlignedTwoLineBIT checks the engine handles blocks spanning
// two lines with a finite BIT table (both lines consulted and filled).
func TestSelfAlignedTwoLineBIT(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = SingleBlock
	cfg.Geometry = icache.ForKind(icache.SelfAligned, 8)
	cfg.BITEntries = 64
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rs []rec
	for i := 0; i < 50; i++ {
		// A block starting at 5 spans lines 0 and 1.
		for pc := uint32(5); pc < 12; pc++ {
			rs = append(rs, rec{pc, isa.ClassPlain, false, 0})
		}
		rs = append(rs, rec{12, isa.ClassJump, true, 5})
	}
	res := e.Run(mkTrace(rs))
	if res.Blocks != 50 {
		t.Fatalf("blocks = %d", res.Blocks)
	}
	// After the first fill the BIT should be warm: at most a couple of
	// BIT penalties.
	if res.PenaltyEvents[metrics.BITMispredict] > 2 {
		t.Errorf("BIT penalties = %d with a warm two-line block",
			res.PenaltyEvents[metrics.BITMispredict])
	}
}
