package core

import (
	"testing"

	"mbbp/internal/metrics"
	"mbbp/internal/packed"
)

// FuzzLaneEquivalence fuzzes (config set × trace) pairs and requires a
// LaneSet run to be indistinguishable — full Result and full Stats()
// snapshot, under both storage backings — from one independent engine
// run per configuration. This is the engine-level analogue of the
// packed-array fuzz oracles: the per-config path is the model, the lane
// path is the implementation under test. Seed inputs live under
// testdata/fuzz/FuzzLaneEquivalence.
func FuzzLaneEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(1), []byte{1, 2, 3})
	f.Add(int64(7), uint8(1), uint8(0), []byte{9, 4, 1, 0, 0, 0})
	f.Add(int64(42), uint8(2), uint8(2), []byte{5, 5, 5, 1, 2, 3, 200, 100, 50})
	f.Add(int64(99), uint8(0), uint8(0), []byte{0xff, 0xfe, 0xfd, 0x01, 0x02, 0x03, 0x10, 0x20, 0x30, 0x40, 0x50, 0x60})
	f.Fuzz(func(t *testing.T, seed int64, a, b uint8, knobs []byte) {
		tr := randomTrace(seed%4096, 1500)
		for _, backing := range []packed.Backing{packed.BackingPacked, packed.BackingReference} {
			cfgs := laneConfigs(a, b, knobs)
			for i := range cfgs {
				cfgs[i].Storage = backing
			}

			want := make([]metrics.Result, len(cfgs))
			wantStats := make([]StructStats, len(cfgs))
			for i, cfg := range cfgs {
				e, err := New(cfg)
				if err != nil {
					t.Fatalf("config %d invalid: %v", i, err)
				}
				want[i] = e.Run(tr)
				wantStats[i] = e.Stats()
			}

			ls, err := NewLanes(cfgs)
			if err != nil {
				t.Fatalf("NewLanes: %v", err)
			}
			got := ls.Run(tr)
			for i := range cfgs {
				if got[i] != want[i] {
					t.Errorf("%v lane %d result diverges:\n lane %+v\n solo %+v",
						backing, i, got[i], want[i])
				}
				if st := ls.Lanes()[i].Stats(); st != wantStats[i] {
					t.Errorf("%v lane %d stats diverge:\n lane %+v\n solo %+v",
						backing, i, st, wantStats[i])
				}
			}
		}
	})
}
