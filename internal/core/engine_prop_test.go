package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mbbp/internal/cpu"
	"mbbp/internal/icache"
	"mbbp/internal/isa"
	"mbbp/internal/metrics"
	"mbbp/internal/trace"
)

// randomTrace builds a well-formed random control-flow trace: a stream
// where every redirect is explicit and PCs advance sequentially
// otherwise, over a 4096-instruction address space.
func randomTrace(seed int64, n int) *trace.Buffer {
	rng := rand.New(rand.NewSource(seed))
	b := trace.NewBuffer("random", n)
	pc := uint32(0)
	const space = 1 << 12
	depth := 0
	var stack [64]uint32
	for i := 0; i < n; i++ {
		r := cpu.Retired{PC: pc}
		roll := rng.Intn(100)
		switch {
		case roll < 60: // plain
			r.Class = isa.ClassPlain
			pc++
		case roll < 80: // conditional
			r.Class = isa.ClassCond
			r.Target = uint32(rng.Intn(space))
			if rng.Intn(2) == 0 {
				r.Taken = true
				pc = r.Target
			} else {
				pc++
			}
		case roll < 88: // jump
			r.Class = isa.ClassJump
			r.Taken = true
			r.Target = uint32(rng.Intn(space))
			pc = r.Target
		case roll < 93: // call
			r.Class = isa.ClassCall
			r.Taken = true
			r.Target = uint32(rng.Intn(space))
			if depth < len(stack) {
				stack[depth] = pc + 1
				depth++
			}
			pc = r.Target
		case roll < 97 && depth > 0: // return
			r.Class = isa.ClassReturn
			r.Taken = true
			depth--
			r.Target = stack[depth]
			pc = r.Target
		default: // indirect
			r.Class = isa.ClassIndirect
			r.Taken = true
			r.Target = uint32(rng.Intn(space))
			pc = r.Target
		}
		if pc >= space {
			// Wrap sequential overflow with a virtual jump next time;
			// simplest is to clamp.
			pc = 0
			r.Taken = true
			if r.Class == isa.ClassPlain {
				r.Class = isa.ClassJump
			}
			r.Target = 0
		}
		b.Append(r)
	}
	return b
}

// randomConfig derives a valid configuration from fuzz bytes.
func randomConfig(a, b, c, d, e, f uint8) Config {
	cfg := DefaultConfig()
	widths := []int{4, 8, 16}
	cfg.Geometry = icache.ForKind(icache.Kind(a%3), widths[b%3])
	cfg.HistoryBits = int(c%10) + 3
	cfg.NumSTs = 1 << (d % 4)
	if e%2 == 0 {
		cfg.Mode = SingleBlock
	}
	switch e % 4 {
	case 1:
		cfg.Selection = metrics.DoubleSelection
		cfg.Mode = DualBlock
	}
	if f%2 == 0 {
		cfg.TargetArray = BTB
		cfg.TargetEntries = 32
	} else {
		cfg.TargetEntries = 1 << (f % 8)
	}
	if f%3 == 0 && cfg.Selection == metrics.SingleSelection {
		cfg.BITEntries = 64
	}
	if f%5 == 0 {
		cfg.NearBlock = true
	}
	// Exercise the §5 extension: 3- and 4-block groups (requires dual
	// mode and single selection).
	if e%8 >= 6 && cfg.Mode == DualBlock && cfg.Selection == metrics.SingleSelection {
		cfg.NumBlocks = 3 + int(e%2)
	}
	return cfg
}

// TestEngineInvariants fuzzes configurations and traces and checks the
// accounting invariants that must hold for any run:
//
//   - every instruction is fetched exactly once,
//   - fetch requests cover all blocks (1 or 2 blocks per request),
//   - penalties are consistent between cycle and event counts,
//   - direction statistics never exceed the branch counts.
func TestEngineInvariants(t *testing.T) {
	f := func(seed int64, a, b, c, d, e, g uint8) bool {
		cfg := randomConfig(a, b, c, d, e, g)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("generated invalid config: %v", err)
		}
		eng, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr := randomTrace(seed, 3000)
		res := eng.Run(tr)

		if res.Instructions != 3000 {
			t.Logf("instructions = %d", res.Instructions)
			return false
		}
		if res.Blocks == 0 || res.FetchCycles == 0 {
			return false
		}
		// Each request fetches between 1 and cfg.Blocks() blocks.
		if cfg.Mode == SingleBlock {
			if res.FetchCycles != res.Blocks {
				t.Logf("single: cycles %d != blocks %d", res.FetchCycles, res.Blocks)
				return false
			}
		} else {
			if res.FetchCycles > res.Blocks ||
				uint64(cfg.Blocks())*res.FetchCycles < res.Blocks {
				t.Logf("%d-block: cycles %d vs blocks %d", cfg.Blocks(), res.FetchCycles, res.Blocks)
				return false
			}
		}
		if res.CondMispredicts > res.CondBranches || res.CondBranches > res.Branches {
			return false
		}
		for k := metrics.Kind(0); k < metrics.NumKinds; k++ {
			if res.PenaltyCycles[k] > 0 && res.PenaltyEvents[k] == 0 {
				return false
			}
			if res.PenaltyEvents[k] > 0 && res.PenaltyCycles[k] < res.PenaltyEvents[k] {
				return false
			}
		}
		// No penalty kind that is N/A for the configuration may appear.
		if cfg.Mode == SingleBlock {
			if res.PenaltyEvents[metrics.Misselect] != 0 ||
				res.PenaltyEvents[metrics.GHRMispredict] != 0 ||
				res.PenaltyEvents[metrics.BankConflict] != 0 {
				t.Log("single-block charged dual-only penalties")
				return false
			}
		}
		if cfg.Selection == metrics.DoubleSelection && res.PenaltyEvents[metrics.BITMispredict] != 0 {
			t.Log("double selection charged BIT penalties")
			return false
		}
		if cfg.BITEntries == 0 && res.PenaltyEvents[metrics.BITMispredict] != 0 {
			t.Log("perfect BIT charged penalties")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestEngineDeterminism: the same trace and configuration always yield
// identical results.
func TestEngineDeterminism(t *testing.T) {
	tr := randomTrace(42, 5000)
	cfg := DefaultConfig()
	e1, _ := New(cfg)
	e2, _ := New(cfg)
	r1 := e1.Run(tr)
	r2 := e2.Run(tr)
	if r1 != r2 {
		t.Errorf("non-deterministic results:\n%+v\n%+v", r1, r2)
	}
}

// TestPerfectlyPredictableTraceHasNoPenalties: a straight-line trace
// (no control transfers) must fetch at the geometry's full width with
// zero penalties.
func TestPerfectlyPredictableTraceHasNoPenalties(t *testing.T) {
	b := trace.NewBuffer("straight", 4096)
	for pc := uint32(0); pc < 4096; pc++ {
		b.Append(cpu.Retired{PC: pc, Class: isa.ClassPlain})
	}
	for _, mode := range []FetchMode{SingleBlock, DualBlock} {
		cfg := DefaultConfig()
		cfg.Mode = mode
		e, _ := New(cfg)
		res := e.Run(b)
		// The only admissible charge is the dual engine's cold-start
		// misselects (the select table starts invalid); those are
		// bounded by the table size and vanish once warm.
		for k := metrics.Kind(0); k < metrics.NumKinds; k++ {
			if k == metrics.Misselect {
				continue
			}
			if res.PenaltyCycles[k] != 0 {
				t.Errorf("%v: straight-line code charged %d cycles of %v", mode, res.PenaltyCycles[k], k)
			}
		}
		if mode == SingleBlock && res.TotalPenaltyCycles() != 0 {
			t.Errorf("single: %d penalty cycles", res.TotalPenaltyCycles())
		}
		if int(res.PenaltyEvents[metrics.Misselect]) > cfg.NumSTs*(1<<cfg.HistoryBits) {
			t.Errorf("%v: %d misselects exceed ST capacity", mode, res.PenaltyEvents[metrics.Misselect])
		}

		// A warm second pass over the same code must be penalty-free
		// and hit the geometry's full width.
		warm := e.Run(b)
		if warm.TotalPenaltyCycles() != 0 {
			t.Errorf("%v: warm straight-line pass charged %d penalty cycles", mode, warm.TotalPenaltyCycles())
		}
		want := 8.0
		if mode == DualBlock {
			want = 16.0
		}
		if got := warm.IPCf(); got != want {
			t.Errorf("%v: warm IPC_f = %v, want %v", mode, got, want)
		}
	}
}

// TestEngineResetIsFresh: running, resetting, and re-running matches a
// brand-new engine.
func TestEngineResetIsFresh(t *testing.T) {
	tr := randomTrace(7, 4000)
	cfg := DefaultConfig()
	e, _ := New(cfg)
	first := e.Run(tr)
	e.Reset()
	second := e.Run(tr)
	second.Program = first.Program
	if first != second {
		t.Error("Reset did not restore cold state")
	}
	// Without Reset, a second run starts warm and differs (fewer
	// cold-start penalties).
	e2, _ := New(cfg)
	e2.Run(tr)
	warm := e2.Run(tr)
	if warm.TotalPenaltyCycles() >= first.TotalPenaltyCycles() {
		t.Errorf("warm run penalties (%d) not below cold (%d)",
			warm.TotalPenaltyCycles(), first.TotalPenaltyCycles())
	}
}
