package core

import "testing"

func TestStatsSnapshot(t *testing.T) {
	e, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cold := e.Stats()
	if cold.TrainedFraction() != 0 {
		t.Errorf("cold PHT trained fraction = %v, want 0", cold.TrainedFraction())
	}
	if cold.STOccupancy() != 0 {
		t.Errorf("cold ST occupancy = %v, want 0", cold.STOccupancy())
	}
	if cold.RASDepth != 0 || cold.GHR != 0 {
		t.Errorf("cold state = %+v", cold)
	}

	e.Run(randomTrace(5, 5000))
	warm := e.Stats()
	if warm.TrainedFraction() <= 0 {
		t.Error("running a workload should train counters")
	}
	if warm.STValid == 0 {
		t.Error("dual-block run should populate the select table")
	}
	if warm.STValid > warm.STTotal {
		t.Errorf("ST valid %d exceeds capacity %d", warm.STValid, warm.STTotal)
	}
	if warm.String() == "" {
		t.Error("empty stats string")
	}
}

func TestStatsSingleBlockHasNoST(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = SingleBlock
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(loopTrace(50))
	s := e.Stats()
	if s.STTotal != 0 || s.STValid != 0 {
		t.Errorf("single-block engine reports ST stats: %+v", s)
	}
}

// TestExactAccounting pins exact cycle counts for a hand-analyzable
// scenario: single-block fetching of a loop whose branch flips once.
func TestExactAccounting(t *testing.T) {
	// Phase 1: a two-block loop via an unconditional jump, 10 times.
	// Phase 2 is absent — every block is 8 instructions, so with a
	// perfect prediction there are exactly 20 fetch cycles after the
	// cold start.
	tr := loopTrace(10)
	cfg := DefaultConfig()
	cfg.Mode = SingleBlock
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run(tr)
	if res.Blocks != 20 || res.FetchCycles != 20 {
		t.Fatalf("blocks=%d cycles=%d, want 20/20", res.Blocks, res.FetchCycles)
	}
	// Cold-start penalties: the first transit of block A's jump misses
	// the (tagless, zero-initialized) NLS — one immediate misfetch of
	// 1 cycle. Block B's jump targets address 0, which the cold NLS
	// happens to hold, so it never misfetches: a concrete instance of
	// tagless aliasing "getting lucky". Everything afterwards is clean.
	if got := res.TotalPenaltyCycles(); got != 1 {
		t.Errorf("penalty cycles = %d, want exactly 1 (one cold NLS slot)", got)
	}
	if res.IPCf() != float64(160)/21 {
		t.Errorf("IPC_f = %v, want 160/21", res.IPCf())
	}
}
