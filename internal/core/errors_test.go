package core

import (
	"errors"
	"testing"

	"mbbp/internal/metrics"
)

// Every Validate failure must wrap ErrInvalidConfig and name the field
// that caused it, so API consumers (CLI flag validation, the HTTP
// service's 400 mapping) can branch without string matching.
func TestValidateTypedErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		field  string
	}{
		{"history too long", func(c *Config) { c.HistoryBits = 27 }, "HistoryBits"},
		{"history zero", func(c *Config) { c.HistoryBits = 0 }, "HistoryBits"},
		{"phts not pow2", func(c *Config) { c.NumPHTs = 3 }, "NumPHTs"},
		{"sts not pow2", func(c *Config) { c.NumSTs = 5 }, "NumSTs"},
		{"blocks out of range", func(c *Config) { c.NumBlocks = 5 }, "NumBlocks"},
		{"ext blocks double sel", func(c *Config) {
			c.NumBlocks = 3
			c.Selection = metrics.DoubleSelection
		}, "Selection"},
		{"ras zero", func(c *Config) { c.RASSize = 0 }, "RASSize"},
		{"bit not pow2", func(c *Config) { c.BITEntries = 7 }, "BITEntries"},
		{"target entries zero", func(c *Config) { c.TargetEntries = 0 }, "TargetEntries"},
		{"btb assoc", func(c *Config) { c.TargetArray = BTB; c.BTBAssoc = 3 }, "BTBAssoc"},
		{"double sel single block", func(c *Config) {
			c.Mode = SingleBlock
			c.Selection = metrics.DoubleSelection
		}, "Selection"},
		{"double sel with BIT", func(c *Config) {
			c.Selection = metrics.DoubleSelection
			c.BITEntries = 64
		}, "BITEntries"},
		{"icache lines not pow2", func(c *Config) {
			c.ICacheLines = 12
			c.ICacheMissPenalty = 10
		}, "ICacheLines"},
		{"bad geometry", func(c *Config) { c.Geometry.BlockWidth = 0 }, "Geometry"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid config")
			}
			if !errors.Is(err, ErrInvalidConfig) {
				t.Errorf("error %v does not wrap ErrInvalidConfig", err)
			}
			var fe *FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("error %v is not a *FieldError", err)
			}
			if fe.Field != tc.field {
				t.Errorf("field = %q, want %q (err: %v)", fe.Field, tc.field, err)
			}
		})
	}

	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}
