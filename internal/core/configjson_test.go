package core

import (
	"bytes"
	"strings"
	"testing"

	"mbbp/internal/icache"
)

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Geometry = icache.ForKind(icache.SelfAligned, 8)
	cfg.NumSTs = 8
	cfg.NearBlock = true
	cfg.ICacheLines = 256
	cfg.ICacheAssoc = 2
	cfg.ICacheMissPenalty = 10

	var buf bytes.Buffer
	if err := cfg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadConfigJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != cfg {
		t.Errorf("round trip changed the config:\n%+v\n%+v", cfg, got)
	}
}

func TestLoadConfigJSONDefaults(t *testing.T) {
	// A sparse file inherits the paper's defaults for omitted fields.
	got, err := LoadConfigJSON(strings.NewReader(`{"HistoryBits": 12, "NumSTs": 4}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.HistoryBits != 12 || got.NumSTs != 4 {
		t.Errorf("explicit fields lost: %+v", got)
	}
	def := DefaultConfig()
	if got.TargetEntries != def.TargetEntries || got.RASSize != def.RASSize {
		t.Errorf("defaults not applied: %+v", got)
	}
}

func TestLoadConfigJSONRejections(t *testing.T) {
	if _, err := LoadConfigJSON(strings.NewReader(`{"HistroyBits": 12}`)); err == nil {
		t.Error("typo field accepted")
	}
	if _, err := LoadConfigJSON(strings.NewReader(`{"HistoryBits": 0}`)); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := LoadConfigJSON(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}
