package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// Canonical configuration hashing — the identity half of the
// content-addressed result cache (internal/server). Two sweep requests
// may serve one cached body exactly when they would produce
// byte-identical responses, and a response echoes its parsed Config, so
// the right equivalence is equality of the *validated struct*: every
// JSON spelling that LoadConfigJSON resolves to the same Config
// (fields in any order, defaults omitted or written out explicitly)
// must hash equal, and any two distinct structs must hash apart.
//
// CanonicalBytes realizes that by serializing the validated struct
// itself: encoding/json marshals struct fields in declaration order
// with a fixed numeric rendering, so the encoding is deterministic, and
// every field round-trips, so it is injective on validated configs.
// The bytes are a serialization contract only in the weak sense —
// they are hashed, never parsed back.

// CanonicalBytes returns the deterministic serialization of a validated
// configuration: equal validated configs yield equal bytes and distinct
// configs yield distinct bytes. It fails with the configuration's own
// validation error, so an unvalidated config can never acquire a cache
// identity.
func (c Config) CanonicalBytes() ([]byte, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(c)
}

// CanonicalHash returns the hex SHA-256 of CanonicalBytes — the
// content address of this configuration. The simulation service builds
// its result-cache keys and ETags from it; the hash is stable across
// processes and restarts because it depends only on the struct value.
func (c Config) CanonicalHash() (string, error) {
	b, err := c.CanonicalBytes()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
