package core

import (
	"strings"
	"testing"
)

func hashJSON(t *testing.T, doc string) string {
	t.Helper()
	cfg, err := LoadConfigJSON(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("LoadConfigJSON(%s): %v", doc, err)
	}
	h, err := cfg.CanonicalHash()
	if err != nil {
		t.Fatalf("CanonicalHash(%s): %v", doc, err)
	}
	return h
}

// TestCanonicalHashEquivalence is the differential key table: two JSON
// spellings hash equal exactly when LoadConfigJSON normalizes them to
// the same validated Config. Field order never matters; writing a
// default out explicitly never matters; changing any knob that reaches
// the response body always matters.
func TestCanonicalHashEquivalence(t *testing.T) {
	cases := []struct {
		name  string
		a, b  string
		equal bool
	}{
		{"field order", `{"HistoryBits":12,"NumSTs":4}`, `{"NumSTs":4,"HistoryBits":12}`, true},
		{"empty vs explicit default", `{}`, `{"HistoryBits":10}`, true},
		{"all defaults written out", `{}`,
			`{"HistoryBits":10,"NumPHTs":1,"NumSTs":1,"RASSize":32,"TargetEntries":256,"BTBAssoc":4,"Mode":1}`, true},
		{"default geometry explicit", `{}`,
			`{"Geometry":{"Kind":0,"BlockWidth":8,"LineSize":8,"Banks":8}}`, true},
		{"history differs", `{"HistoryBits":12}`, `{"HistoryBits":13}`, false},
		{"near-block differs", `{}`, `{"NearBlock":true}`, false},
		{"selection differs", `{"NumSTs":4}`, `{"NumSTs":4,"Selection":1}`, false},
		// NumBlocks 0 means "derive from Mode" (2 under dual-block); the
		// explicit spelling is a distinct struct and a distinct echoed
		// Config in the response body, so it must hash apart.
		{"derived vs explicit block count", `{}`, `{"NumBlocks":2}`, false},
		{"target array differs", `{}`, `{"TargetArray":1,"TargetEntries":64}`, false},
		{"storage backing differs", `{}`, `{"Storage":1}`, false},
		{"paper vs tage", `{}`, `{"Predictor":1}`, false},
		{"tage zero params vs omitted", `{"Predictor":1}`, `{"Predictor":1,"TAGE":{}}`, true},
		{"tage field order", `{"Predictor":1,"TAGE":{"Tables":6,"TagBits":9}}`,
			`{"TAGE":{"TagBits":9,"Tables":6},"Predictor":1}`, true},
		// TAGE.Tables 4 is the *effective* default, but the explicit
		// spelling is a different struct (0 vs 4), a different echoed
		// config, and therefore a different key.
		{"tage effective default explicit", `{"Predictor":1}`, `{"Predictor":1,"TAGE":{"Tables":4}}`, false},
		{"tage knob differs", `{"Predictor":1,"TAGE":{"Tables":6}}`, `{"Predictor":1,"TAGE":{"Tables":8}}`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ha, hb := hashJSON(t, tc.a), hashJSON(t, tc.b)
			if (ha == hb) != tc.equal {
				t.Errorf("hash(%s) vs hash(%s): equal=%v, want %v", tc.a, tc.b, ha == hb, tc.equal)
			}
			// Hash equality must coincide with struct equality.
			ca, _ := LoadConfigJSON(strings.NewReader(tc.a))
			cb, _ := LoadConfigJSON(strings.NewReader(tc.b))
			if (ca == cb) != tc.equal {
				t.Errorf("struct equality %v disagrees with expected %v — fix the table", ca == cb, tc.equal)
			}
		})
	}
}

// TestCanonicalHashStability pins the determinism contract: hashing the
// same struct twice, or a copy, yields the same hex digest, and the
// digest has the SHA-256 shape.
func TestCanonicalHashStability(t *testing.T) {
	cfg := DefaultConfig()
	h1, err := cfg.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	cp := cfg
	h2, err := cp.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Errorf("copies hash apart: %s vs %s", h1, h2)
	}
	if len(h1) != 64 || strings.Trim(h1, "0123456789abcdef") != "" {
		t.Errorf("hash %q is not lowercase hex sha256", h1)
	}
}

// TestCanonicalHashRejectsInvalid: an unvalidatable config has no cache
// identity — both helpers surface the config's own field error.
func TestCanonicalHashRejectsInvalid(t *testing.T) {
	bad := DefaultConfig()
	bad.NumSTs = 3
	if _, err := bad.CanonicalBytes(); err == nil {
		t.Error("CanonicalBytes accepted an invalid config")
	}
	if _, err := bad.CanonicalHash(); err == nil {
		t.Error("CanonicalHash accepted an invalid config")
	}
}
