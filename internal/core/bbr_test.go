package core

import "testing"

// TestTable4BBRBits checks the bad-branch-recovery entry size against
// the paper's Table 4 field widths: 1+1+1 flag bits, an 8-12 bit PHT
// index, an optional 2W-bit PHT block, an 8-12 bit corrected GHR, an
// 8-11 bit replacement selector, and a 10- or 30-bit corrected address.
func TestTable4BBRBits(t *testing.T) {
	// The paper's default configuration (h=10, W=8, 10-bit cache
	// index, no PHT block) gives ~41 bits per entry; 8 entries land at
	// the §5 figure of ~0.3 Kbit.
	got := BBRBits(10, 8, 8, false, false, false)
	if got < 38 || got > 44 {
		t.Errorf("default BBR entry = %d bits, want ~41", got)
	}
	if total := 8 * got; total < 300 || total > 350 {
		t.Errorf("8 BBR entries = %d bits, want ~320 (0.3 Kbit)", total)
	}

	// The optional PHT block adds exactly 2W bits.
	withBlock := BBRBits(10, 8, 8, false, true, false)
	if withBlock-got != 16 {
		t.Errorf("PHT block adds %d bits, want 16", withBlock-got)
	}

	// The full-address variant adds 20 bits over the cache index.
	full := BBRBits(10, 8, 8, false, false, true)
	if full-got != 20 {
		t.Errorf("full address adds %d bits, want 20", full-got)
	}

	// Near-block selectors widen the replacement selector.
	near := BBRBits(10, 8, 8, true, false, false)
	if near <= got {
		t.Errorf("near-block BBR = %d, should exceed %d", near, got)
	}
}

// TestBBREntryFields sanity-checks the struct carries every Table 4
// field (compile-time shape check plus zero-value usability).
func TestBBREntryFields(t *testing.T) {
	e := BBREntry{
		BlockTwo:        true,
		PredictedTaken:  true,
		SecondChance:    false,
		PHTIndex:        0x3FF,
		CorrectedGHR:    0x2AA,
		AlternateTarget: 1234,
	}
	if !e.BlockTwo || !e.PredictedTaken || e.SecondChance {
		t.Error("flag fields wrong")
	}
	if e.PHTIndex != 0x3FF || e.CorrectedGHR != 0x2AA || e.AlternateTarget != 1234 {
		t.Error("index fields wrong")
	}
	if e.PHTBlock != nil {
		t.Error("PHT block is optional and defaults to nil")
	}
}
