package core

import "mbbp/internal/seltab"

// BBREntry is a bad branch recovery entry (Table 4): the bookkeeping the
// processor carries with every in-flight conditional branch so a
// misprediction can be repaired immediately. The simulator resolves
// branches at block consumption (the paper likewise assumes enough BBR
// entries are always available), so the struct exists for fidelity, the
// cost model, and the replacement-selector write-back path.
type BBREntry struct {
	// BlockTwo is set when the branch was fetched in the second block
	// of a dual fetch.
	BlockTwo bool
	// PredictedTaken is the direction that was predicted.
	PredictedTaken bool
	// SecondChance is set when the counter was in a strong state, so a
	// single misprediction does not flip the stored prediction.
	SecondChance bool
	// PHTIndex is the entry the branch was predicted from.
	PHTIndex uint32
	// PHTBlock optionally snapshots the whole counter block so the PHT
	// can be updated with one write after the block resolves.
	PHTBlock []uint8
	// CorrectedGHR is the history value to restore on misprediction.
	CorrectedGHR uint32
	// Replacement is the pre-computed selector reflecting the opposite
	// outcome, written to the select table when the branch mispredicts
	// without a second chance.
	Replacement seltab.Selector
	// AlternateTarget is the address to fetch on misprediction: the
	// branch target if predicted not taken, otherwise the next control
	// transfer or fall-through address in the block.
	AlternateTarget uint32
}

// BBRBits returns the Table 4 entry size in bits for a configuration.
// historyBits sizes the PHT index and corrected GHR; blockWidth sizes
// the optional PHT block (2n bits) and the replacement selector;
// fullAddr selects a full 30-bit corrected address over a 10-bit cache
// index.
func BBRBits(historyBits, blockWidth, lineSize int, nearBlock, phtBlock, fullAddr bool) int {
	bits := 1 + 1 + 1 // block number, predicted direction, second chance
	bits += historyBits
	if phtBlock {
		bits += 2 * blockWidth
	}
	bits += historyBits // corrected GHR
	bits += seltab.SelectorBits(blockWidth, lineSize, nearBlock)
	if fullAddr {
		bits += 30
	} else {
		bits += 10
	}
	return bits
}
