package core

import (
	"mbbp/internal/cpu"
	"mbbp/internal/icache"
	"mbbp/internal/isa"
)

// block is one actual fetch block of the dynamic stream: a run of
// sequential instructions starting at Start, ended by the first of (a)
// the geometry's block limit, or (b) an actually redirecting control
// transfer (inclusive). Not-taken conditional branches do not end a
// block.
type block struct {
	start uint32
	insts []cpu.Retired // len 1..BlockWidth, backed by the reader's scratch
	next  uint32        // starting address of the following block
}

func (b *block) n() int { return len(b.insts) }

// exitIdx returns the index of the redirecting control transfer ending
// the block, or -1 when the block falls through (ended by the limit).
func (b *block) exitIdx() int {
	last := len(b.insts) - 1
	if b.insts[last].Taken {
		return last
	}
	return -1
}

// condOutcomes packs the block's conditional-branch outcomes
// oldest-first into (count, bits) form for GHR updates.
func (b *block) condOutcomes() (n int, bits uint32) {
	for _, r := range b.insts {
		if r.Class == isa.ClassCond {
			bits <<= 1
			if r.Taken {
				bits |= 1
			}
			n++
		}
	}
	return n, bits
}

// blockReader segments a retired-instruction stream into blocks under a
// cache geometry. It keeps one instruction of lookahead because a block
// boundary is only known once the next instruction's address is seen.
type blockReader struct {
	src     source
	geom    icache.Geometry
	scratch []cpu.Retired
	pending cpu.Retired
	have    bool
	done    bool
}

// source is the subset of trace.Source the reader needs (avoids an
// import cycle in tests that fake it).
type source interface {
	Next() (cpu.Retired, bool)
}

func newBlockReader(src source, geom icache.Geometry) *blockReader {
	return &blockReader{
		src:     src,
		geom:    geom,
		scratch: make([]cpu.Retired, 0, geom.BlockWidth),
	}
}

// next returns the next block, or ok=false at end of stream. The
// returned block's insts slice is only valid until the following call.
func (r *blockReader) next() (block, bool) {
	if r.done {
		return block{}, false
	}
	first := r.pending
	if !r.have {
		var ok bool
		first, ok = r.src.Next()
		if !ok {
			r.done = true
			return block{}, false
		}
	}
	r.have = false

	b := block{start: first.PC, insts: r.scratch[:0]}
	limit := r.geom.BlockLimit(first.PC)
	cur := first
	for {
		b.insts = append(b.insts, cur)
		if cur.Taken {
			b.next = cur.Target
			return b, true
		}
		if len(b.insts) >= limit {
			b.next = b.start + uint32(len(b.insts))
			return b, true
		}
		nxt, ok := r.src.Next()
		if !ok {
			r.done = true
			b.next = b.start + uint32(len(b.insts))
			return b, true
		}
		if nxt.PC != cur.PC+1 {
			// Discontinuity without a redirecting record — should not
			// happen with a well-formed trace, but tolerate it by
			// ending the block here.
			r.pending, r.have = nxt, true
			b.next = nxt.PC
			return b, true
		}
		cur = nxt
	}
}
