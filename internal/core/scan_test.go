package core

import (
	"testing"

	"mbbp/internal/bitable"
	"mbbp/internal/cpu"
	"mbbp/internal/icache"
	"mbbp/internal/isa"
	"mbbp/internal/pht"
	"mbbp/internal/seltab"
)

// trueCodes is a test convenience: the shared-block BIT codes for one
// block under the engine's own near-block setting.
func (e *Engine) trueCodes(blk *block) []bitable.Code {
	sh := newSharedBlock(e.geom)
	sh.set(blk)
	return sh.trueCodes(e.cfg.NearBlock)
}

// table2Engine builds an engine with near-block encoding for the
// paper's Table 2 example and a PHT entry holding the example's counter
// values: position 1 = 10 (weakly taken), position 5 = 11 (strongly
// taken).
func table2Engine(t *testing.T) (*Engine, []pht.Counter) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Mode = SingleBlock
	cfg.NearBlock = true
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	entry := make([]pht.Counter, 8)
	entry[1] = 2 // "10"
	entry[5] = 3 // "11"
	return e, entry
}

// table2Line returns the example line of Table 2, placed in line 1
// (addresses 8..15) so the prev-line target of the branch at position 1
// exists:
//
//	pos 0 shift, 1 branch (BIT 100: cond prev line), 2 add,
//	3 jump (BIT 010), 4 sub, 5 branch (BIT 011: cond long),
//	6 move, 7 return (BIT 001).
func table2Line() []cpu.Retired {
	return []cpu.Retired{
		{PC: 8, Class: isa.ClassPlain},
		{PC: 9, Class: isa.ClassCond, Target: 2}, // prev line
		{PC: 10, Class: isa.ClassPlain},
		{PC: 11, Class: isa.ClassJump, Target: 100}, // other branch
		{PC: 12, Class: isa.ClassPlain},
		{PC: 13, Class: isa.ClassCond, Target: 200}, // long target
		{PC: 14, Class: isa.ClassPlain},
		{PC: 15, Class: isa.ClassReturn},
	}
}

// blockFrom builds a block starting at the given position of the
// Table 2 line, ending at idx exit (inclusive) with the actual next
// address.
func blockFrom(line []cpu.Retired, startPos, exitPos int, taken bool, next uint32) *block {
	insts := append([]cpu.Retired(nil), line[startPos:exitPos+1]...)
	if taken {
		insts[len(insts)-1].Taken = true
	}
	return &block{start: line[startPos].PC, insts: insts, next: next}
}

// TestTable2Example reproduces every starting position of the paper's
// Table 2: the exit position the scan finds and the next-line selection
// source, plus the replacement selector on misprediction.
func TestTable2Example(t *testing.T) {
	e, entry := table2Engine(t)
	line := table2Line()

	// Check the BIT codes of the full line first (Table 2 row "BIT
	// value"): 000 100 000 010 000 011 000 001.
	full := &block{start: 8, insts: line, next: 0}
	wantCodes := []bitable.Code{
		bitable.CodePlain, bitable.CodeCondPrev, bitable.CodePlain, bitable.CodeOther,
		bitable.CodePlain, bitable.CodeCondLong, bitable.CodePlain, bitable.CodeReturn,
	}
	got := e.trueCodes(full)
	for i := range wantCodes {
		if got[i] != wantCodes[i] {
			t.Errorf("BIT[%d] = %v, want %v", i, got[i], wantCodes[i])
		}
	}

	// Starting position 0: exit position 1 — the branch at 9 is
	// predicted taken (PHT 10) with a prev-line near target.
	b0 := blockFrom(line, 0, 1, true, 2)
	sc := e.scan(b0, e.trueCodes(b0), pht.EntryFor(entry))
	if sc.exit != 1 || sc.sel.Source != seltab.SrcNearPrev {
		t.Errorf("start 0: exit %d source %v, want 1, near-prev", sc.exit, sc.sel.Source)
	}
	if sc.sel.Pos != 1 || !sc.sel.TakenBit || sc.sel.NTCount != 0 {
		t.Errorf("start 0 selector = %+v", sc.sel)
	}
	// Near-block targets are computed exactly.
	if addr, ok := e.evaluate(b0, sc, 0); !ok || addr != 2 {
		t.Errorf("start 0 target = %d, want 2", addr)
	}
	// On misprediction, the alternate is the next control transfer in
	// the block: the jump at position 3, i.e. the target array slot for
	// position 3 ("target on misprediction: NLS(3)"). The replacement
	// selector is the same, because PHT 10 has no second chance.
	alt := e.correctedSelector(blockFrom(line, 0, 3, true, 100))
	if alt.Source != seltab.SrcTarget || alt.Pos != 3 {
		t.Errorf("start 0 replacement = %+v, want target@3", alt)
	}
	if entry[1].SecondChance() {
		t.Error("PHT 10 must not have a second chance")
	}

	// Starting position 2: exit position 3, always the target array
	// ("NLS(3)"), no misprediction possible.
	b2 := blockFrom(line, 2, 3, true, 100)
	sc = e.scan(b2, e.trueCodes(b2), pht.EntryFor(entry))
	if sc.exit != 1 || sc.sel.Source != seltab.SrcTarget || sc.sel.Pos != 3 {
		t.Errorf("start 2: exit %d sel %+v, want exit 1 (pos 3), target", sc.exit, sc.sel)
	}
	if sc.sel.TakenBit {
		t.Error("unconditional exit must not shift a taken bit into the GHR")
	}

	// Starting position 4: exit position 5 (PHT 11 strongly taken),
	// NLS(5). On misprediction the alternate is the return at 7 (RAS),
	// and the second-chance bit means the prediction does not change.
	b4 := blockFrom(line, 4, 5, true, 200)
	sc = e.scan(b4, e.trueCodes(b4), pht.EntryFor(entry))
	if sc.exit != 1 || sc.sel.Source != seltab.SrcTarget || sc.sel.Pos != 5 {
		t.Errorf("start 4: sel %+v, want target@5", sc.sel)
	}
	alt = e.correctedSelector(blockFrom(line, 4, 7, true, 77))
	if alt.Source != seltab.SrcRAS {
		t.Errorf("start 4 misprediction target = %v, want RAS", alt.Source)
	}
	if !entry[5].SecondChance() {
		t.Error("PHT 11 must have a second chance")
	}

	// Starting position 6: exit position 7, return — RAS.
	b6 := blockFrom(line, 6, 7, true, 77)
	sc = e.scan(b6, e.trueCodes(b6), pht.EntryFor(entry))
	if sc.exit != 1 || sc.sel.Source != seltab.SrcRAS || sc.sel.Pos != 7 {
		t.Errorf("start 6: sel %+v, want ras@7", sc.sel)
	}
}

// TestTable1PredictionSources checks every BIT type maps to the Table 1
// prediction source in the scan.
func TestTable1PredictionSources(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = SingleBlock
	cfg.NearBlock = true
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	taken := make([]pht.Counter, 8)
	for i := range taken {
		taken[i] = 3
	}
	cases := []struct {
		class  isa.Class
		target uint32
		want   seltab.Source
	}{
		{isa.ClassReturn, 0, seltab.SrcRAS},
		{isa.ClassJump, 100, seltab.SrcTarget},
		{isa.ClassCall, 100, seltab.SrcTarget},
		{isa.ClassIndirect, 100, seltab.SrcTarget},
		{isa.ClassIndirectCall, 100, seltab.SrcTarget},
		{isa.ClassCond, 100, seltab.SrcTarget},   // long
		{isa.ClassCond, 2, seltab.SrcNearPrev},   // prev line
		{isa.ClassCond, 12, seltab.SrcNearSame},  // same line
		{isa.ClassCond, 17, seltab.SrcNearNext},  // next line
		{isa.ClassCond, 26, seltab.SrcNearNext2}, // next line + 1
	}
	for _, c := range cases {
		blk := &block{
			start: 8,
			insts: []cpu.Retired{{PC: 8, Class: c.class, Taken: true, Target: c.target}},
			next:  c.target,
		}
		sc := e.scan(blk, e.trueCodes(blk), pht.EntryFor(taken))
		if sc.exit != 0 || sc.sel.Source != c.want {
			t.Errorf("%v target %d: source %v, want %v", c.class, c.target, sc.sel.Source, c.want)
		}
	}

	// A plain block falls through.
	blk := &block{
		start: 8,
		insts: []cpu.Retired{{PC: 8, Class: isa.ClassPlain}, {PC: 9, Class: isa.ClassPlain}},
		next:  10,
	}
	sc := e.scan(blk, e.trueCodes(blk), pht.EntryFor(taken))
	if sc.exit != -1 || sc.sel.Source != seltab.SrcFallThrough {
		t.Errorf("plain block: %+v, want fall-through", sc.sel)
	}
	if addr, _ := e.evaluate(blk, sc, 0); addr != 10 {
		t.Errorf("fall-through address = %d, want 10", addr)
	}

	// A not-taken-predicted conditional is skipped and counted.
	weak := make([]pht.Counter, 8)
	blk = &block{
		start: 8,
		insts: []cpu.Retired{
			{PC: 8, Class: isa.ClassCond, Target: 100},
			{PC: 9, Class: isa.ClassReturn, Taken: true},
		},
		next: 55,
	}
	sc = e.scan(blk, e.trueCodes(blk), pht.EntryFor(weak))
	if sc.exit != 1 || sc.sel.Source != seltab.SrcRAS || sc.sel.NTCount != 1 {
		t.Errorf("skip-NT scan = exit %d %+v", sc.exit, sc.sel)
	}
}

// TestGeometryPositionWrap checks PHT counter positions and target-array
// slots wrap modulo W for the extended cache (§4.5: "the values wrap
// around the PHT block").
func TestGeometryPositionWrap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Geometry = icache.ForKind(icache.Extended, 8)
	cfg.Mode = SingleBlock
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	entry := make([]pht.Counter, 8)
	entry[12%8] = 3 // the branch at line offset 12 uses counter 4
	blk := &block{
		start: 12,
		insts: []cpu.Retired{{PC: 12, Class: isa.ClassCond, Taken: true, Target: 300}},
		next:  300,
	}
	sc := e.scan(blk, e.trueCodes(blk), pht.EntryFor(entry))
	if sc.exit != 0 || !sc.sel.TakenBit {
		t.Errorf("wrapped counter not used: %+v", sc.sel)
	}
	if sc.sel.Pos != 4 {
		t.Errorf("selector pos = %d, want 4 (12 mod 8)", sc.sel.Pos)
	}
}
