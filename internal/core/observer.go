package core

import (
	"fmt"
	"io"

	"mbbp/internal/isa"
	"mbbp/internal/metrics"
	"mbbp/internal/seltab"
)

// Event describes the engine's handling of one fetch block, emitted to
// an Observer as the simulation runs — the per-cycle visibility the
// paper's pipeline diagrams (Figures 3 and 5) give on paper.
type Event struct {
	// Cycle and Block are the running fetch-request and block counts.
	Cycle, Block uint64
	// Role is the block's position in its fetch group (0 = first).
	Role int
	// Start and Len describe the fetched block; ExitClass is the class
	// of its terminating transfer (ClassPlain for a fall-through).
	Start     uint32
	Len       int
	ExitClass isa.Class
	// GHR is the global history register value the block was predicted
	// under (its state before the block's own outcomes were shifted in)
	// — the index material for correlating mispredictions with history
	// patterns.
	GHR uint32
	// Selector is the multiplexer selection the scan produced for the
	// block's successor; PredictedNext is its evaluated address and
	// ActualNext where execution really went.
	Selector      seltab.Selector
	PredictedNext uint32
	ActualNext    uint32
	// Penalty and Kind record the Table 3 charge for this block
	// (Penalty == 0 means a clean prediction); Redirect is true when
	// the pipeline restarted.
	Penalty  int
	Kind     metrics.Kind
	Redirect bool
}

// Observer receives per-block events. Observers run synchronously on
// the simulation path; keep them cheap.
type Observer interface {
	Observe(Event)
}

// ObserverGate is optionally implemented by observers that can be
// switched off while staying installed (obs.Tap). Run checks the gate
// once per call: a disabled observer is treated exactly like nil, so
// the per-block cost of an installed-but-disabled tap is the same
// single nil-check the engine always pays — the guarantee the
// obs-overhead benchmark pins.
type ObserverGate interface {
	ObserverEnabled() bool
}

// SetObserver installs an observer (nil to remove).
func (e *Engine) SetObserver(o Observer) { e.obs = o }

// LogObserver is an Observer printing a compact line per block, up to
// Limit blocks (0 = unlimited).
type LogObserver struct {
	W     io.Writer
	Limit uint64
	seen  uint64
}

// Observe implements Observer.
func (l *LogObserver) Observe(ev Event) {
	if l.Limit > 0 && l.seen >= l.Limit {
		return
	}
	l.seen++
	status := "ok"
	if ev.Penalty > 0 {
		status = fmt.Sprintf("%v +%d", ev.Kind, ev.Penalty)
	}
	fmt.Fprintf(l.W, "cyc %6d blk %6d role %d  [%6d..%6d] exit=%-13v sel=%-11v next %6d/%-6d  %s\n",
		ev.Cycle, ev.Block, ev.Role,
		ev.Start, ev.Start+uint32(ev.Len)-1, ev.ExitClass, ev.Selector.Source,
		ev.PredictedNext, ev.ActualNext, status)
}

// FuncObserver adapts a function to the Observer interface.
type FuncObserver func(Event)

// Observe implements Observer.
func (f FuncObserver) Observe(ev Event) { f(ev) }
