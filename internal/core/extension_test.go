package core

import (
	"testing"

	"mbbp/internal/isa"
	"mbbp/internal/metrics"
	"mbbp/internal/pht"
	"mbbp/internal/trace"
)

// fourBlockLoop builds a loop of four jump-linked blocks so a 4-block
// fetch group can cover one iteration per cycle.
func fourBlockLoop(n int) *trace.Buffer {
	starts := []uint32{0, 16, 32, 48}
	var rs []rec
	for i := 0; i < n; i++ {
		for bi, s := range starts {
			for pc := s; pc < s+7; pc++ {
				rs = append(rs, rec{pc, isa.ClassPlain, false, 0})
			}
			next := starts[(bi+1)%len(starts)]
			rs = append(rs, rec{s + 7, isa.ClassJump, true, next})
		}
	}
	return mkTrace(rs)
}

// TestNBlockExtension checks the §5 extension: fetching 3 and 4 blocks
// per cycle raises the effective fetch rate beyond the dual-block
// engine on predictable code.
func TestNBlockExtension(t *testing.T) {
	tr := fourBlockLoop(400)
	rates := map[int]float64{}
	for _, blocks := range []int{1, 2, 3, 4} {
		cfg := DefaultConfig()
		if blocks == 1 {
			cfg.Mode = SingleBlock
		}
		cfg.NumBlocks = blocks
		e, err := New(cfg)
		if err != nil {
			t.Fatalf("blocks=%d: %v", blocks, err)
		}
		res := e.Run(tr)
		rates[blocks] = res.IPCf()
		if res.Instructions == 0 {
			t.Fatalf("blocks=%d: empty run", blocks)
		}
		// Each request fetches at most `blocks` blocks.
		if res.FetchCycles*uint64(blocks) < res.Blocks {
			t.Errorf("blocks=%d: %d requests cannot cover %d blocks",
				blocks, res.FetchCycles, res.Blocks)
		}
	}
	if !(rates[1] < rates[2] && rates[2] < rates[3] && rates[3] < rates[4]) {
		t.Errorf("IPC_f should rise with blocks/cycle: %v", rates)
	}
	if rates[4] < 24 {
		t.Errorf("4-block IPC_f = %.2f, want near 32 on a steady loop", rates[4])
	}
}

// TestNBlockValidation checks the configuration constraints of the
// extension.
func TestNBlockValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumBlocks = 3
	cfg.Selection = metrics.DoubleSelection
	if err := cfg.Validate(); err == nil {
		t.Error("3 blocks with double selection should be rejected")
	}
	cfg = DefaultConfig()
	cfg.NumBlocks = 5
	if err := cfg.Validate(); err == nil {
		t.Error("5 blocks should be rejected")
	}
	cfg = DefaultConfig()
	cfg.Mode = SingleBlock
	cfg.NumBlocks = 2
	if err := cfg.Validate(); err == nil {
		t.Error("NumBlocks 2 with single-block mode should be rejected")
	}
}

// TestPerBlockPHTVariant checks the paper's per-block multi-PHT
// variation runs and trains: branches in blocks with different low
// address bits use different tables.
func TestPerBlockPHTVariant(t *testing.T) {
	tr := loopTrace(400)
	for _, phts := range []int{1, 2, 8} {
		cfg := DefaultConfig()
		cfg.Mode = SingleBlock
		cfg.NumPHTs = phts
		e, err := New(cfg)
		if err != nil {
			t.Fatalf("NumPHTs=%d: %v", phts, err)
		}
		res := e.Run(tr)
		if res.CondAccuracy() < 0.9 && res.CondBranches > 0 {
			t.Errorf("NumPHTs=%d: accuracy %.3f", phts, res.CondAccuracy())
		}
	}
}

// TestIndexModeAblation compares gshare against history-only indexing
// on a workload with many static branches: gshare's address bits should
// not hurt, and both must run correctly.
func TestIndexModeAblation(t *testing.T) {
	tr := randomTrace(99, 20000)
	for _, mode := range []pht.IndexMode{pht.IndexGShare, pht.IndexGlobal} {
		cfg := DefaultConfig()
		cfg.IndexMode = mode
		e, err := New(cfg)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		res := e.Run(tr)
		if res.Instructions != 20000 {
			t.Errorf("%v: instructions = %d", mode, res.Instructions)
		}
	}
}

// TestBlockedMultiIndexing unit-tests the banked PHT index math.
func TestBlockedMultiIndexing(t *testing.T) {
	b := pht.NewBlockedMulti(8, 8, 4, pht.IndexGShare)
	if b.Tables() != 4 || b.Entries() != 4*256 {
		t.Fatalf("geometry: %d tables, %d entries", b.Tables(), b.Entries())
	}
	// Addresses differing only in their low two bits use different
	// tables, so training one must not affect the other.
	b.Update(0x55, 0x100, 0x100, true)
	b.Update(0x55, 0x100, 0x100, true)
	if b.Predict(0x55, 0x101, 0x100) {
		t.Error("different table was affected by training")
	}
	if !b.Predict(0x55, 0x100, 0x100) {
		t.Error("trained table does not predict taken")
	}

	g := pht.NewBlockedMulti(8, 8, 1, pht.IndexGlobal)
	// History-only indexing: different addresses share an entry.
	if g.Index(0x5A, 1) != g.Index(0x5A, 9999) {
		t.Error("global indexing must ignore the address")
	}
}
