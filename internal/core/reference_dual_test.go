package core

// An independent naive specification of DUAL-block fetch prediction
// with single selection — the paper's core mechanism — equivalence-
// checked against the optimized engine. Like the single-block reference
// it shares no engine code; it re-derives the behavior from DESIGN.md:
// roles alternating through the pair, the select table memoizing the
// second block's multiplexer selection, the dual target array indexed
// by the group's predecessor, bank conflicts, and the Table 3 penalty
// columns.

import (
	"testing"
	"testing/quick"

	"mbbp/internal/cpu"
	"mbbp/internal/isa"
	"mbbp/internal/metrics"
)

type refSelector struct {
	src      string // "ft", "ras", "target"
	pos      uint8
	nt       uint8
	takenBit bool
}

func (a refSelector) sameMux(b refSelector) bool {
	return a.src == b.src && a.pos == b.pos
}
func (a refSelector) sameGHR(b refSelector) bool {
	return a.nt == b.nt && a.takenBit == b.takenBit
}

type refSTEntry struct {
	valid  bool
	second refSelector
}

type refDual struct {
	counters [1 << refHist][refW]uint8
	ghr      uint32
	nls1     [refEntries][refW]uint32
	nls2     [refEntries][refW]uint32
	st       [1 << refHist]refSTEntry
	ras      [refRAS]uint32
	rasTop   int

	// carried state
	prevAddr uint32
	prevGHR  uint32
	havePrev bool
	cycGHR   uint32
	cycAddr  uint32
	cycValid bool
	role     int
	lineA    uint32

	fetchCycles  uint64
	blocks       uint64
	instructions uint64
	penalties    map[metrics.Kind]uint64
	condBranches uint64
	condMiss     uint64
}

func newRefDual() *refDual {
	m := &refDual{penalties: map[metrics.Kind]uint64{}, rasTop: -1}
	for i := range m.counters {
		for j := range m.counters[i] {
			m.counters[i][j] = 1
		}
	}
	return m
}

func (m *refDual) run(recs []cpu.Retired) {
	i := 0
	for i < len(recs) {
		start := recs[i].PC
		limit := refLine - int(start)%refLine
		if limit > refW {
			limit = refW
		}
		var blk []cpu.Retired
		for len(blk) < limit && i < len(recs) {
			r := recs[i]
			blk = append(blk, r)
			i++
			if r.Taken {
				break
			}
			if i < len(recs) && recs[i].PC != r.PC+1 {
				break
			}
		}
		m.consume(start, blk)
	}
}

// scanSel reproduces the BIT/PHT scan's selector.
func (m *refDual) scanSel(start uint32, blk []cpu.Retired, idx uint32) (int, refSelector) {
	var nt uint8
	for j, r := range blk {
		pos := uint8((start + uint32(j)) % refW)
		switch r.Class {
		case isa.ClassPlain:
			continue
		case isa.ClassCond:
			if m.counters[idx][pos] >= 2 {
				return j, refSelector{src: "target", pos: pos, nt: nt, takenBit: true}
			}
			nt++
		case isa.ClassReturn:
			return j, refSelector{src: "ras", pos: pos, nt: nt}
		default:
			return j, refSelector{src: "target", pos: pos, nt: nt}
		}
	}
	return -1, refSelector{src: "ft", nt: nt}
}

// corrected reproduces the BBR replacement selector from actual
// outcomes.
func (m *refDual) corrected(start uint32, blk []cpu.Retired) refSelector {
	var nt uint8
	for j, r := range blk {
		if r.Class == isa.ClassCond && !r.Taken {
			nt++
			continue
		}
		if !r.Taken {
			continue
		}
		pos := uint8((start + uint32(j)) % refW)
		switch r.Class {
		case isa.ClassReturn:
			return refSelector{src: "ras", pos: pos, nt: nt}
		case isa.ClassCond:
			return refSelector{src: "target", pos: pos, nt: nt, takenBit: true}
		default:
			return refSelector{src: "target", pos: pos, nt: nt}
		}
	}
	return refSelector{src: "ft", nt: nt}
}

func (m *refDual) consume(start uint32, blk []cpu.Retired) {
	role := m.role
	m.blocks++
	m.instructions += uint64(len(blk))
	myLine := start / refLine
	if role == 0 {
		m.fetchCycles++
		m.lineA = myLine
		if m.havePrev {
			m.cycGHR, m.cycAddr = m.prevGHR, m.prevAddr
			m.cycValid = true
		} else {
			m.cycValid = false
		}
	} else {
		// Bank conflict: same bank, different line (8 banks).
		if myLine != m.lineA && myLine%8 == m.lineA%8 {
			m.charge(metrics.BankConflict, 1)
		}
	}

	ghrPre := m.ghr
	idx := (ghrPre ^ start) & (1<<refHist - 1)
	predExit, sel := m.scanSel(start, blk, idx)

	succRole := 0
	if role == 0 {
		succRole = 1
	}

	// Evaluate the successor address.
	var predNext uint32
	predOK := true
	switch sel.src {
	case "ft":
		predNext = start + uint32(len(blk))
	case "ras":
		if m.rasTop >= 0 {
			predNext = m.ras[m.rasTop]
		} else {
			predNext = 0
		}
	default:
		if succRole == 1 && m.havePrev {
			predNext = m.nls2[m.prevAddr%refEntries][sel.pos%refW]
		} else {
			predNext = m.nls1[start%refEntries][sel.pos%refW]
		}
	}

	// Actual exit and classification.
	actualExit := -1
	last := blk[len(blk)-1]
	if last.Taken {
		actualExit = len(blk) - 1
	}
	actualNext := last.Target
	if actualExit < 0 {
		actualNext = start + uint32(len(blk))
	}

	redirect := false
	var kind metrics.Kind
	switch {
	case predExit < 0 && actualExit < 0:
	case predExit < 0:
		redirect, kind = true, metrics.CondMispredict
		m.charge(metrics.CondMispredict, 4+role)
	case actualExit < 0 || predExit < actualExit:
		p := 4 + role
		if role == 0 && predExit < len(blk)-1 {
			p++
		}
		redirect, kind = true, metrics.CondMispredict
		m.charge(metrics.CondMispredict, p)
	default:
		if !(predOK && predNext == actualNext) {
			redirect = true
			switch blk[predExit].Class {
			case isa.ClassReturn:
				kind = metrics.ReturnMispredict
				m.charge(kind, 4+role)
			case isa.ClassIndirect, isa.ClassIndirectCall:
				kind = metrics.MisfetchIndirect
				m.charge(kind, 4+role)
			default:
				kind = metrics.MisfetchImmediate
				m.charge(kind, 1+role)
			}
		}
	}

	// Select-table verification for the successor (single selection:
	// only second-role successors are memoized).
	condFlip := false
	if redirect && kind == metrics.CondMispredict {
		x := predExit
		if x < 0 {
			x = actualExit
		}
		if x >= 0 && blk[x].Class == isa.ClassCond {
			c := m.counters[idx][(start+uint32(x))%refW]
			condFlip = c == 1 || c == 2 // weak: no second chance
		}
	}
	if succRole == 1 && m.cycValid {
		e := &m.st[(m.cycGHR^m.cycAddr)&(1<<refHist-1)]
		mismatchMux := !e.valid || !e.second.sameMux(sel)
		mismatchGHR := !e.valid || !e.second.sameGHR(sel)
		if !redirect {
			if mismatchMux {
				m.charge(metrics.Misselect, 1)
			} else if mismatchGHR {
				m.charge(metrics.GHRMispredict, 1)
			}
		}
		if mismatchMux || mismatchGHR {
			e.second = sel
			e.valid = true
		}
		if condFlip {
			e.second = m.corrected(start, blk)
			e.valid = true
		}
	}

	// Training.
	for j, r := range blk {
		if r.Class != isa.ClassCond {
			continue
		}
		m.condBranches++
		pos := (start + uint32(j)) % refW
		c := m.counters[idx][pos]
		if (c >= 2) != r.Taken {
			m.condMiss++
		}
		if r.Taken && c < 3 {
			m.counters[idx][pos] = c + 1
		}
		if !r.Taken && c > 0 {
			m.counters[idx][pos] = c - 1
		}
	}
	if actualExit >= 0 {
		rec := blk[actualExit]
		addr := start + uint32(actualExit)
		if rec.Class != isa.ClassReturn {
			m.nls1[start%refEntries][int(addr)%refW] = actualNext
			if m.havePrev {
				m.nls2[m.prevAddr%refEntries][int(addr)%refW] = actualNext
			}
		}
		switch {
		case rec.Class == isa.ClassCall || rec.Class == isa.ClassIndirectCall:
			m.rasTop = (m.rasTop + 1) % refRAS
			m.ras[m.rasTop] = addr + 1
		case rec.Class == isa.ClassReturn:
			if m.rasTop >= 0 {
				m.rasTop = (m.rasTop - 1 + refRAS) % refRAS
			}
		}
	}
	for _, r := range blk {
		if r.Class == isa.ClassCond {
			m.ghr = m.ghr << 1 & (1<<refHist - 1)
			if r.Taken {
				m.ghr |= 1
			}
		}
	}

	m.prevAddr = start
	m.prevGHR = ghrPre
	m.havePrev = true
	if redirect {
		m.role = 0
	} else {
		m.role = succRole
	}
}

func (m *refDual) charge(k metrics.Kind, cycles int) {
	m.penalties[k] += uint64(cycles)
}

// TestDualEngineMatchesReferenceModel equivalence-checks the dual-block
// single-selection engine against the naive specification on random
// traces — every counter, cycle and penalty bucket must agree.
func TestDualEngineMatchesReferenceModel(t *testing.T) {
	f := func(seed int64) bool {
		tr := randomTrace(seed, 4000)

		eng, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		got := eng.Run(tr)

		ref := newRefDual()
		var recs []cpu.Retired
		tr.Reset()
		for {
			r, ok := tr.Next()
			if !ok {
				break
			}
			recs = append(recs, r)
		}
		ref.run(recs)

		if got.FetchCycles != ref.fetchCycles || got.Blocks != ref.blocks ||
			got.Instructions != ref.instructions {
			t.Logf("seed %d: cycles %d/%d blocks %d/%d instr %d/%d",
				seed, got.FetchCycles, ref.fetchCycles, got.Blocks, ref.blocks,
				got.Instructions, ref.instructions)
			return false
		}
		if got.CondBranches != ref.condBranches || got.CondMispredicts != ref.condMiss {
			t.Logf("seed %d: cond %d/%d miss %d/%d",
				seed, got.CondBranches, ref.condBranches, got.CondMispredicts, ref.condMiss)
			return false
		}
		for k := metrics.Kind(0); k < metrics.NumKinds; k++ {
			if got.PenaltyCycles[k] != ref.penalties[k] {
				t.Logf("seed %d: %v cycles %d/%d", seed, k, got.PenaltyCycles[k], ref.penalties[k])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
