package core

import (
	"bytes"
	"strings"
	"testing"

	"mbbp/internal/metrics"
)

func TestObserverSeesEveryBlock(t *testing.T) {
	e, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	e.SetObserver(FuncObserver(func(ev Event) { events = append(events, ev) }))
	res := e.Run(loopTrace(20))
	if uint64(len(events)) != res.Blocks {
		t.Fatalf("observed %d events for %d blocks", len(events), res.Blocks)
	}
	// Event streams reconstruct the totals.
	var penalty uint64
	for _, ev := range events {
		penalty += uint64(ev.Penalty)
		if ev.Len < 1 || ev.Len > 8 {
			t.Errorf("event block length %d", ev.Len)
		}
	}
	// Observed penalties cover the dominant charge per block, so they
	// are bounded by the result's total.
	if penalty > res.TotalPenaltyCycles() {
		t.Errorf("observed %d penalty cycles, result says %d", penalty, res.TotalPenaltyCycles())
	}
	// Roles must follow the dual-block pattern: never two consecutive
	// role-1 blocks.
	for i := 1; i < len(events); i++ {
		if events[i].Role == 1 && events[i-1].Role == 1 {
			t.Fatalf("events %d,%d both second-role", i-1, i)
		}
	}
}

func TestObserverRemovable(t *testing.T) {
	e, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	e.SetObserver(FuncObserver(func(Event) { calls++ }))
	e.Run(loopTrace(5))
	seen := calls
	e.SetObserver(nil)
	e.Run(loopTrace(5))
	if calls != seen {
		t.Error("observer still firing after removal")
	}
}

func TestLogObserver(t *testing.T) {
	var buf bytes.Buffer
	e, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e.SetObserver(&LogObserver{W: &buf, Limit: 5})
	e.Run(loopTrace(50))
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("log lines = %d, want 5 (limit)", len(lines))
	}
	if !strings.Contains(lines[0], "cyc") || !strings.Contains(lines[0], "jump") {
		t.Errorf("log line malformed: %q", lines[0])
	}
}

func TestObserverReportsPenaltyKind(t *testing.T) {
	// The indirect-polymorphism trace guarantees misfetch events.
	var rs []rec
	for i := 0; i < 50; i++ {
		tgt := uint32(32)
		if i%2 == 1 {
			tgt = 48
		}
		rs = append(rs,
			rec{0, 4 /* isa.ClassIndirect */, true, tgt},
			rec{tgt, 2 /* isa.ClassJump */, true, 0},
		)
	}
	cfg := DefaultConfig()
	cfg.Mode = SingleBlock
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sawIndirect := false
	e.SetObserver(FuncObserver(func(ev Event) {
		if ev.Penalty > 0 && ev.Kind == metrics.MisfetchIndirect {
			sawIndirect = true
		}
	}))
	e.Run(mkTrace(rs))
	if !sawIndirect {
		t.Error("no indirect-misfetch event observed")
	}
}
