package core

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"mbbp/internal/icache"
	"mbbp/internal/metrics"
	"mbbp/internal/packed"
	"mbbp/internal/trace"
)

// laneConfigs derives a set of 1-4 configurations sharing one geometry
// from fuzz bytes: the geometry comes from (a, b) and each lane's
// remaining knobs from its own byte triple, so lanes differ in history
// depth, selection, target array, BIT size and near-block encoding but
// never in block formation.
func laneConfigs(a, b uint8, knobs []uint8) []Config {
	n := len(knobs) / 3
	if n == 0 {
		n = 1
	}
	if n > 4 {
		n = 4
	}
	cfgs := make([]Config, n)
	for i := range cfgs {
		var c, d, e uint8 = 1, 2, 3
		if len(knobs) >= 3*(i+1) {
			c, d, e = knobs[3*i], knobs[3*i+1], knobs[3*i+2]
		}
		cfgs[i] = randomConfig(a, b, c, d, e, uint8(i)*37+e)
		// randomConfig derives geometry from its first two bytes, so
		// every lane shares it by construction.
	}
	return cfgs
}

// runIndependent runs one fresh engine per configuration over the trace
// and returns the results and the paired Stats snapshots.
func runIndependent(t *testing.T, cfgs []Config, tr *trace.Buffer) ([]metrics.Result, []StructStats) {
	t.Helper()
	results := make([]metrics.Result, len(cfgs))
	stats := make([]StructStats, len(cfgs))
	for i, cfg := range cfgs {
		e, err := New(cfg)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		results[i] = e.Run(tr)
		stats[i] = e.Stats()
	}
	return results, stats
}

// TestLaneEquivalence pins the core guarantee: a LaneSet run over a
// random trace produces, for every lane, the identical Result and the
// identical structure Stats snapshot as an independent engine run —
// under both storage backings.
func TestLaneEquivalence(t *testing.T) {
	f := func(seed int64, a, b uint8, knobs []uint8) bool {
		tr := randomTrace(seed%1000, 2500)
		for _, backing := range []packed.Backing{packed.BackingPacked, packed.BackingReference} {
			cfgs := laneConfigs(a, b, knobs)
			for i := range cfgs {
				cfgs[i].Storage = backing
			}
			wantRes, wantStats := runIndependent(t, cfgs, tr)

			ls, err := NewLanes(cfgs)
			if err != nil {
				t.Fatalf("NewLanes: %v", err)
			}
			got := ls.Run(tr)
			for i := range cfgs {
				if got[i] != wantRes[i] {
					t.Logf("%v lane %d result:\n lane %+v\n solo %+v", backing, i, got[i], wantRes[i])
					return false
				}
				if ls.Lanes()[i].Stats() != wantStats[i] {
					t.Logf("%v lane %d stats diverge", backing, i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestLanePartitionInvariance: running {A,B,C} as one lane set, as
// {A} + {B,C}, or as three singleton sets yields identical per-config
// results — lane membership is unobservable.
func TestLanePartitionInvariance(t *testing.T) {
	f := func(seed int64, a, b uint8, knobs []uint8) bool {
		cfgs := laneConfigs(a, b, knobs)
		if len(cfgs) < 2 {
			return true
		}
		tr := randomTrace(seed%1000, 2000)

		run := func(parts [][]Config) []metrics.Result {
			var out []metrics.Result
			for _, part := range parts {
				ls, err := NewLanes(part)
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, ls.Run(tr)...)
			}
			return out
		}

		whole := run([][]Config{cfgs})
		split := run([][]Config{cfgs[:1], cfgs[1:]})
		var singles [][]Config
		for i := range cfgs {
			singles = append(singles, cfgs[i:i+1])
		}
		alone := run(singles)

		for i := range whole {
			if whole[i] != split[i] || whole[i] != alone[i] {
				t.Logf("partition divergence at lane %d:\n whole %+v\n split %+v\n alone %+v",
					i, whole[i], split[i], alone[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestLaneSingletonMatchesEngineRun: a one-lane set is exactly
// Engine.Run, including the Program name picked up from a named source.
func TestLaneSingletonMatchesEngineRun(t *testing.T) {
	tr := randomTrace(11, 3000)
	cfg := DefaultConfig()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := e.Run(tr)

	ls, err := NewLanes([]Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	got := ls.Run(tr)
	if len(got) != 1 || got[0] != want {
		t.Errorf("singleton lane diverges:\n lane %+v\n solo %+v", got, want)
	}
	if got[0].Program != "random" {
		t.Errorf("lane Program = %q, want %q", got[0].Program, "random")
	}
}

// TestNewLanesErrors: empty sets, invalid lane configurations, and
// mixed geometries are all rejected with descriptive errors.
func TestNewLanesErrors(t *testing.T) {
	if _, err := NewLanes(nil); err == nil {
		t.Error("NewLanes(nil) succeeded")
	}

	bad := DefaultConfig()
	bad.HistoryBits = -1
	if _, err := NewLanes([]Config{DefaultConfig(), bad}); err == nil {
		t.Error("invalid lane config accepted")
	} else {
		if !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("lane config error does not wrap ErrInvalidConfig: %v", err)
		}
		if !strings.Contains(err.Error(), "lane 1") {
			t.Errorf("error does not name the offending lane: %v", err)
		}
	}

	other := DefaultConfig()
	other.Geometry = icache.ForKind(icache.SelfAligned, 8)
	if _, err := NewLanes([]Config{DefaultConfig(), other}); err == nil {
		t.Error("mixed-geometry lane set accepted")
	} else if !strings.Contains(err.Error(), "geometry") {
		t.Errorf("mixed-geometry error unclear: %v", err)
	}
}

// countObserver counts events and remembers the last one.
type countObserver struct {
	n    int
	last Event
}

func (c *countObserver) Observe(ev Event) { c.n++; c.last = ev }

// gatedObserver is a countObserver that reports itself disabled.
type gatedObserver struct {
	countObserver
	enabled bool
}

func (g *gatedObserver) ObserverEnabled() bool { return g.enabled }

// TestLaneObservers: observers attach per lane, see exactly the events
// an independent run would emit, and the ObserverGate contract holds
// lane by lane.
func TestLaneObservers(t *testing.T) {
	tr := randomTrace(5, 2000)
	cfgA := DefaultConfig()
	cfgB := DefaultConfig()
	cfgB.HistoryBits = 6

	// Reference: independent run of cfgB with an observer.
	ref, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	refObs := &countObserver{}
	ref.SetObserver(refObs)
	refRes := ref.Run(tr)

	ls, err := NewLanes([]Config{cfgA, cfgB})
	if err != nil {
		t.Fatal(err)
	}
	laneObs := &countObserver{}
	off := &gatedObserver{enabled: false}
	ls.Lanes()[0].SetObserver(off)
	ls.Lanes()[1].SetObserver(laneObs)
	got := ls.Run(tr)

	if got[1] != refRes {
		t.Errorf("observed lane result diverges:\n lane %+v\n solo %+v", got[1], refRes)
	}
	if laneObs.n == 0 || laneObs.n != refObs.n {
		t.Errorf("lane observer saw %d events, independent run %d", laneObs.n, refObs.n)
	}
	if laneObs.last != refObs.last {
		t.Errorf("last event diverges:\n lane %+v\n solo %+v", laneObs.last, refObs.last)
	}
	if off.n != 0 {
		t.Errorf("disabled gated observer received %d events", off.n)
	}

	// Re-enable the gate: the next Run must deliver events.
	off.enabled = true
	ls.Run(tr)
	if off.n == 0 {
		t.Error("enabled gated observer received no events")
	}
}

// TestLaneRunsAreRestartable: consecutive Run calls on a LaneSet warm
// the lanes exactly like consecutive Engine.Run calls.
func TestLaneRunsAreRestartable(t *testing.T) {
	tr := randomTrace(9, 2500)
	cfgs := []Config{DefaultConfig(), DefaultConfig()}
	cfgs[1].HistoryBits = 7

	solo := make([]metrics.Result, len(cfgs))
	for i, cfg := range cfgs {
		e, _ := New(cfg)
		e.Run(tr)
		solo[i] = e.Run(tr) // warm second pass
	}

	ls, err := NewLanes(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	ls.Run(tr)
	warm := ls.Run(tr)
	for i := range cfgs {
		if warm[i] != solo[i] {
			t.Errorf("warm lane %d diverges:\n lane %+v\n solo %+v", i, warm[i], solo[i])
		}
	}
}
