package core

import (
	"testing"

	"mbbp/internal/cpu"
	"mbbp/internal/icache"
	"mbbp/internal/isa"
	"mbbp/internal/trace"
)

// mkTrace builds a buffer from (pc, class, taken, target) tuples.
type rec struct {
	pc     uint32
	class  isa.Class
	taken  bool
	target uint32
}

func mkTrace(recs []rec) *trace.Buffer {
	b := trace.NewBuffer("synthetic", len(recs))
	for _, r := range recs {
		b.Append(cpu.Retired{PC: r.pc, Class: r.class, Taken: r.taken, Target: r.target})
	}
	return b
}

func readBlocks(t *testing.T, src trace.Source, geom icache.Geometry) []block {
	t.Helper()
	src.Reset()
	rd := newBlockReader(src, geom)
	var out []block
	for {
		b, ok := rd.next()
		if !ok {
			return out
		}
		// Deep-copy: the reader reuses its scratch.
		cp := b
		cp.insts = append([]cpu.Retired(nil), b.insts...)
		out = append(out, cp)
	}
}

func TestBlockEndsAtTakenTransfer(t *testing.T) {
	geom := icache.ForKind(icache.Normal, 8)
	tr := mkTrace([]rec{
		{0, isa.ClassPlain, false, 0},
		{1, isa.ClassPlain, false, 0},
		{2, isa.ClassJump, true, 20},
		{20, isa.ClassPlain, false, 0},
	})
	blocks := readBlocks(t, tr, geom)
	if len(blocks) != 2 {
		t.Fatalf("got %d blocks, want 2", len(blocks))
	}
	b := blocks[0]
	if b.start != 0 || b.n() != 3 || b.exitIdx() != 2 || b.next != 20 {
		t.Errorf("block 0 = start%d n%d exit%d next%d", b.start, b.n(), b.exitIdx(), b.next)
	}
	if blocks[1].start != 20 {
		t.Errorf("block 1 starts at %d", blocks[1].start)
	}
}

func TestNotTakenCondDoesNotEndBlock(t *testing.T) {
	geom := icache.ForKind(icache.Normal, 8)
	tr := mkTrace([]rec{
		{0, isa.ClassCond, false, 50}, // not taken: block continues
		{1, isa.ClassCond, false, 50},
		{2, isa.ClassCond, true, 50}, // taken: block ends
	})
	blocks := readBlocks(t, tr, geom)
	if len(blocks) != 1 {
		t.Fatalf("got %d blocks, want 1", len(blocks))
	}
	b := blocks[0]
	if b.n() != 3 || b.exitIdx() != 2 || b.next != 50 {
		t.Errorf("block = n%d exit%d next%d", b.n(), b.exitIdx(), b.next)
	}
	n, bits := b.condOutcomes()
	if n != 3 || bits != 0b001 {
		t.Errorf("cond outcomes = %d, %03b; want 3, 001", n, bits)
	}
}

func TestBlockTruncatedByLineBoundary(t *testing.T) {
	geom := icache.ForKind(icache.Normal, 8)
	var rs []rec
	for pc := uint32(5); pc < 13; pc++ { // crosses the line at 8
		rs = append(rs, rec{pc, isa.ClassPlain, false, 0})
	}
	blocks := readBlocks(t, mkTrace(rs), geom)
	if len(blocks) != 2 {
		t.Fatalf("got %d blocks, want 2", len(blocks))
	}
	if blocks[0].n() != 3 || blocks[0].next != 8 || blocks[0].exitIdx() != -1 {
		t.Errorf("block 0 = n%d next%d exit%d; want 3, 8, -1",
			blocks[0].n(), blocks[0].next, blocks[0].exitIdx())
	}
	if blocks[1].start != 8 || blocks[1].n() != 5 {
		t.Errorf("block 1 = start%d n%d", blocks[1].start, blocks[1].n())
	}
}

func TestSelfAlignedIgnoresLineBoundary(t *testing.T) {
	geom := icache.ForKind(icache.SelfAligned, 8)
	var rs []rec
	for pc := uint32(5); pc < 14; pc++ {
		rs = append(rs, rec{pc, isa.ClassPlain, false, 0})
	}
	blocks := readBlocks(t, mkTrace(rs), geom)
	if blocks[0].n() != 8 {
		t.Errorf("self-aligned block = %d instructions, want 8", blocks[0].n())
	}
}

func TestExtendedLineTruncatesLess(t *testing.T) {
	geom := icache.ForKind(icache.Extended, 8)
	var rs []rec
	for pc := uint32(5); pc < 20; pc++ {
		rs = append(rs, rec{pc, isa.ClassPlain, false, 0})
	}
	blocks := readBlocks(t, mkTrace(rs), geom)
	// Start 5 in a 16-wide line: full 8 fit (5..12).
	if blocks[0].n() != 8 {
		t.Errorf("extended block 0 = %d instructions, want 8", blocks[0].n())
	}
	// Next starts at 13: only 3 until the line ends at 16.
	if blocks[1].start != 13 || blocks[1].n() != 3 {
		t.Errorf("extended block 1 = start%d n%d, want 13, 3", blocks[1].start, blocks[1].n())
	}
}

func TestBlockWidthCap(t *testing.T) {
	geom := icache.Geometry{Kind: icache.Normal, BlockWidth: 4, LineSize: 8, Banks: 8}
	var rs []rec
	for pc := uint32(0); pc < 8; pc++ {
		rs = append(rs, rec{pc, isa.ClassPlain, false, 0})
	}
	blocks := readBlocks(t, mkTrace(rs), geom)
	if len(blocks) != 2 || blocks[0].n() != 4 || blocks[1].n() != 4 {
		t.Errorf("W=4 segmentation wrong: %d blocks", len(blocks))
	}
}

func TestStreamEndMidBlock(t *testing.T) {
	geom := icache.ForKind(icache.Normal, 8)
	tr := mkTrace([]rec{
		{0, isa.ClassPlain, false, 0},
		{1, isa.ClassPlain, false, 0},
	})
	blocks := readBlocks(t, tr, geom)
	if len(blocks) != 1 || blocks[0].n() != 2 {
		t.Fatalf("partial final block mishandled: %+v", blocks)
	}
}
