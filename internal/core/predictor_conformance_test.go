// Shared conformance suite for every Predictor strategy. The suite
// runs in the external test package so it can link internal/tage the
// same way binaries do (blank import → init-time registration) and
// exercise both families through the public registry alone.
package core_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"mbbp/internal/core"
	_ "mbbp/internal/tage"
)

// conformanceConfigs returns one validated configuration per
// registered strategy, plus tuned variants, so every property below
// runs against every family.
func conformanceConfigs(t testing.TB) []core.Config {
	t.Helper()
	var cfgs []core.Config
	add := func(mut func(*core.Config)) {
		c := core.DefaultConfig()
		mut(&c)
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		cfgs = append(cfgs, c)
	}
	add(func(c *core.Config) {})
	add(func(c *core.Config) { c.HistoryBits = 6; c.NumPHTs = 4 })
	add(func(c *core.Config) { c.Predictor = core.PredictorTAGE })
	add(func(c *core.Config) {
		c.Predictor = core.PredictorTAGE
		c.TAGE = core.TAGEParams{Tables: 2, TableBits: 5, TagBits: 6,
			BaseBits: 6, MinHistory: 3, MaxHistory: 17, ResetPeriod: 64}
	})
	return cfgs
}

// opStream drives a predictor through a deterministic block sequence
// (lookup, reads, updates, history shift) and returns a signature of
// every prediction it made. Two predictors in the same state must
// produce equal signatures.
func opStream(p core.Predictor, w int, seed uint32, steps int) []byte {
	var sig []byte
	state := seed | 1
	hist := uint32(0)
	for s := 0; s < steps; s++ {
		state = state*1664525 + 1013904223
		blockAddr := state >> 8 & 0xFFFF
		p.Lookup(hist, blockAddr)
		for pos := 0; pos < w; pos++ {
			var b byte
			if p.Taken(pos) {
				b |= 1
			}
			if p.SecondChance(pos) {
				b |= 2
			}
			sig = append(sig, b)
		}
		// Resolve a couple of branches per block.
		for k := 0; k < 2; k++ {
			state = state*1664525 + 1013904223
			pos := int(state>>16) % w
			taken := state>>24&1 == 1
			p.Update(pos, taken)
		}
		state = state*1664525 + 1013904223
		n := int(state>>20)%3 + 1
		bits := state >> 9 & (1<<uint(n) - 1)
		p.Shift(n, bits)
		hist = hist<<uint(n) | bits // mirror of the engine's GHR
	}
	return sig
}

func sigEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// wordsReporter is the optional cost cross-check interface: strategies
// backed by packed arrays report their total backing words.
type wordsReporter interface{ Words() int }

func TestPredictorConformance(t *testing.T) {
	for _, cfg := range conformanceConfigs(t) {
		cfg := cfg
		name := cfg.PredictorLabel()
		if cfg.Predictor == core.PredictorPaper {
			name = fmt.Sprintf("paper/h%d_p%d", cfg.HistoryBits, cfg.NumPHTs)
		}
		build := func(t *testing.T) core.Predictor {
			t.Helper()
			p, err := core.NewPredictor(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}
		w := cfg.Geometry.BlockWidth

		t.Run(name+"/determinism", func(t *testing.T) {
			a := opStream(build(t), w, 0xC0FFEE, 400)
			b := opStream(build(t), w, 0xC0FFEE, 400)
			if !sigEqual(a, b) {
				t.Fatal("two fresh instances diverged on the same stream")
			}
		})

		t.Run(name+"/reset-equals-fresh", func(t *testing.T) {
			p := build(t)
			fresh := opStream(p, w, 0xBEEF, 300)
			p.Reset()
			again := opStream(p, w, 0xBEEF, 300)
			if !sigEqual(fresh, again) {
				t.Fatal("Reset() state differs from a fresh build")
			}
		})

		t.Run(name+"/reads-are-pure", func(t *testing.T) {
			// Re-reading every position between operations must not
			// change the stream signature (the stale-BIT scan re-reads
			// blocks); drive one instance with extra reads injected.
			a := build(t)
			noisy := func(p core.Predictor) []byte {
				var sig []byte
				state := uint32(0x1234567)
				for s := 0; s < 300; s++ {
					state = state*1664525 + 1013904223
					p.Lookup(0, state>>8&0xFFFF)
					for r := 0; r < 3; r++ { // repeated reads
						for pos := 0; pos < w; pos++ {
							p.Taken(pos)
							p.SecondChance(pos)
						}
					}
					var b byte
					if p.Taken(0) {
						b = 1
					}
					sig = append(sig, b)
					p.Update(int(state>>16)%w, state>>24&1 == 1)
					p.Shift(1, state>>9&1)
				}
				return sig
			}
			quiet := func(p core.Predictor) []byte {
				var sig []byte
				state := uint32(0x1234567)
				for s := 0; s < 300; s++ {
					state = state*1664525 + 1013904223
					p.Lookup(0, state>>8&0xFFFF)
					var b byte
					if p.Taken(0) {
						b = 1
					}
					sig = append(sig, b)
					p.Update(int(state>>16)%w, state>>24&1 == 1)
					p.Shift(1, state>>9&1)
				}
				return sig
			}
			if !sigEqual(noisy(a), quiet(build(t))) {
				t.Fatal("repeated reads perturbed predictor state")
			}
		})

		t.Run(name+"/statebits", func(t *testing.T) {
			p := build(t)
			bits := p.StateBits()
			if bits <= 0 {
				t.Fatalf("StateBits = %d", bits)
			}
			if wr, ok := p.(wordsReporter); ok {
				if cap := wr.Words() * 64; bits > cap {
					t.Fatalf("StateBits %d exceeds measured backing capacity %d", bits, cap)
				}
			}
			// Training must not change the advertised cost.
			opStream(p, w, 7, 200)
			if p.StateBits() != bits {
				t.Fatalf("StateBits changed under training: %d -> %d", bits, p.StateBits())
			}
		})

		t.Run(name+"/counter-census", func(t *testing.T) {
			p := build(t)
			fresh := p.CounterStates()
			total := fresh[0] + fresh[1] + fresh[2] + fresh[3]
			if total == 0 {
				t.Fatal("no direction counters reported")
			}
			opStream(p, w, 99, 200)
			after := p.CounterStates()
			if got := after[0] + after[1] + after[2] + after[3]; got != total {
				t.Fatalf("counter census changed size: %d -> %d", total, got)
			}
		})
	}
}

// TestPaperUpdateOrderIndependence: for the paper strategy, updates to
// distinct positions of one latched block touch distinct 2-bit
// counters, so their order cannot matter. testing/quick drives the
// position pairs and outcomes.
func TestPaperUpdateOrderIndependence(t *testing.T) {
	cfg := core.DefaultConfig()
	w := cfg.Geometry.BlockWidth
	f := func(seed uint32, p1, p2 uint8, t1, t2 bool) bool {
		posA, posB := int(p1)%w, int(p2)%w
		if posA == posB {
			return true
		}
		build := func() core.Predictor {
			p, err := core.NewPredictor(cfg)
			if err != nil {
				t.Fatal(err)
			}
			opStream(p, w, seed, 50) // arbitrary warm state
			p.Lookup(seed&0x3FF, seed>>10&0xFFFF)
			return p
		}
		a, b := build(), build()
		a.Update(posA, t1)
		a.Update(posB, t2)
		b.Update(posB, t2)
		b.Update(posA, t1)
		return a.CounterStates() == b.CounterStates()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// FuzzPredictorEquivalence drives each registered strategy twice from
// a fuzzer-chosen operation stream and demands identical predictions
// and counter censuses — the determinism contract under arbitrary
// interleavings of lookups, reads, updates and shifts.
func FuzzPredictorEquivalence(f *testing.F) {
	f.Add(uint32(1), []byte{0x10, 0x32, 0x54, 0x76})
	f.Add(uint32(0xDEAD), []byte{0xFF, 0x00, 0xAA, 0x55, 0x11, 0x22})
	f.Add(uint32(7), []byte{0x01})
	f.Fuzz(func(t *testing.T, seed uint32, ops []byte) {
		for _, cfg := range conformanceConfigs(t) {
			a, err := core.NewPredictor(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := core.NewPredictor(cfg)
			if err != nil {
				t.Fatal(err)
			}
			w := cfg.Geometry.BlockWidth
			hist := seed
			for _, op := range ops {
				blockAddr := uint32(op) * 37 & 0xFFFF
				a.Lookup(hist, blockAddr)
				b.Lookup(hist, blockAddr)
				pos := int(op) % w
				if a.Taken(pos) != b.Taken(pos) ||
					a.SecondChance(pos) != b.SecondChance(pos) {
					t.Fatalf("%s: prediction divergence at op %#x", cfg.PredictorLabel(), op)
				}
				a.Update(pos, op&1 == 1)
				b.Update(pos, op&1 == 1)
				n := int(op>>1)%3 + 1
				bits := uint32(op >> 3)
				a.Shift(n, bits)
				b.Shift(n, bits)
				hist = hist<<uint(n) | bits
			}
			if a.CounterStates() != b.CounterStates() {
				t.Fatalf("%s: counter census divergence", cfg.PredictorLabel())
			}
			if a.StateBits() != b.StateBits() {
				t.Fatalf("%s: StateBits divergence", cfg.PredictorLabel())
			}
		}
	})
}
