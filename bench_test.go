package mbbp

// Benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation section. Each benchmark re-runs its experiment
// on a fixed-size workload trace set and reports the paper's metrics
// via b.ReportMetric, so `go test -bench=. -benchmem` regenerates every
// reported series. The CLI (cmd/mbpexp) renders the same experiments as
// full tables at larger trace sizes.

import (
	"sync"
	"testing"

	"mbbp/internal/harness"
	"mbbp/internal/metrics"
)

// benchInstructions keeps the per-program trace length small enough for
// quick iteration; cmd/mbpexp defaults to 10x more.
const benchInstructions = 200_000

var (
	benchOnce   sync.Once
	benchTraces *harness.TraceSet
	benchErr    error
)

func traces(b *testing.B) *harness.TraceSet {
	benchOnce.Do(func() {
		benchTraces, benchErr = harness.LoadTraces(harness.Options{Instructions: benchInstructions})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchTraces
}

// BenchmarkFig6BlockedVsScalar regenerates Figure 6: conditional branch
// misprediction of the blocked PHT vs the equal-size scalar two-level
// predictor, history length 6-12.
func BenchmarkFig6BlockedVsScalar(b *testing.B) {
	ts := traces(b)
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig6(ts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.History == 10 {
					b.ReportMetric(100*r.BlockedInt, "int-misp-%")
					b.ReportMetric(100*r.BlockedFP, "fp-misp-%")
					b.ReportMetric(r.ImproveInt, "int-improve-pp")
				}
			}
		}
	}
}

// BenchmarkFig7BITSize regenerates Figure 7: BEP contribution of a
// finite BIT table and the resulting fetch rate, 64-4096 entries.
func BenchmarkFig7BITSize(b *testing.B) {
	ts := traces(b)
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig7(ts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			first, last := rows[0], rows[len(rows)-1]
			b.ReportMetric(first.PctBEPInt, "bit64-int-%bep")
			b.ReportMetric(last.PctBEPInt, "bit4096-int-%bep")
			b.ReportMetric(last.IPCfInt, "bit4096-int-ipcf")
		}
	}
}

// BenchmarkFig8Selection regenerates Figure 8: IPC_f for single vs
// double selection across history lengths and select-table counts.
func BenchmarkFig8Selection(b *testing.B) {
	ts := traces(b)
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig8(ts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.History == 10 && r.STs == 8 {
					b.ReportMetric(r.SingleInt, "int-single-ipcf")
					b.ReportMetric(r.DoubleInt, "int-double-ipcf")
					b.ReportMetric(r.SingleFP, "fp-single-ipcf")
				}
			}
		}
	}
}

// BenchmarkTable5TargetArrays regenerates Table 5: misfetch BEP share
// for BTB vs NLS sizes with and without near-block encoding (SPECint).
func BenchmarkTable5TargetArrays(b *testing.B) {
	ts := traces(b)
	for i := 0; i < b.N; i++ {
		rows, err := harness.Table5(ts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Kind == NLS && r.Entries == 256 && !r.NearBlock {
					b.ReportMetric(r.IPCf, "nls256-ipcf")
					b.ReportMetric(r.BEP, "nls256-bep")
				}
				if r.Kind == BTB && r.Entries == 32 && !r.NearBlock {
					b.ReportMetric(r.IPCf, "btb32-ipcf")
				}
			}
		}
	}
}

// BenchmarkTable6CacheTypes regenerates Table 6: IPB and IPC_f for the
// normal, extended and self-aligned caches with 1- and 2-block
// fetching.
func BenchmarkTable6CacheTypes(b *testing.B) {
	ts := traces(b)
	for i := 0; i < b.N; i++ {
		rows, err := harness.Table6(ts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				switch r.Kind {
				case CacheNormal:
					b.ReportMetric(r.IPCf2FP, "normal-fp-2blk-ipcf")
				case CacheSelfAligned:
					b.ReportMetric(r.IPCf2FP, "align-fp-2blk-ipcf")
					b.ReportMetric(r.IPCf2Int, "align-int-2blk-ipcf")
				}
			}
		}
	}
}

// BenchmarkFig9Breakdown regenerates Figure 9: the per-program BEP
// breakdown for two-block single selection on a self-aligned cache.
func BenchmarkFig9Breakdown(b *testing.B) {
	ts := traces(b)
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig9(ts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Program == "CINT95" {
					b.ReportMetric(r.BEP, "int-bep")
					b.ReportMetric(r.ByKind[metrics.CondMispredict], "int-bep-cond")
				}
				if r.Program == "CFP95" {
					b.ReportMetric(r.BEP, "fp-bep")
				}
			}
		}
	}
}

// BenchmarkCostModel regenerates the §5 cost walkthrough (Table 7).
func BenchmarkCostModel(b *testing.B) {
	var est CostEstimate
	for i := 0; i < b.N; i++ {
		est = EstimateCost(PaperCostParams())
	}
	b.ReportMetric(float64(est.SingleBlockTotal())/1024, "single-kbits")
	b.ReportMetric(float64(est.DualSingleTotal())/1024, "dual-single-kbits")
	b.ReportMetric(float64(est.DualDoubleTotal())/1024, "dual-double-kbits")
}

// BenchmarkExtBlocks regenerates the §5 extension sweep: effective
// fetch rate for 1-4 blocks per cycle.
func BenchmarkExtBlocks(b *testing.B) {
	ts := traces(b)
	for i := 0; i < b.N; i++ {
		rows, err := harness.ExtBlocks(ts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				switch r.Blocks {
				case 2:
					b.ReportMetric(r.IPCfFP, "fp-2blk-ipcf")
				case 4:
					b.ReportMetric(r.IPCfFP, "fp-4blk-ipcf")
					b.ReportMetric(r.IPCfInt, "int-4blk-ipcf")
				}
			}
		}
	}
}

// BenchmarkAblationPHT regenerates the predictor-organization ablation:
// gshare vs history-only indexing, one vs four blocked PHTs.
func BenchmarkAblationPHT(b *testing.B) {
	ts := traces(b)
	for i := 0; i < b.N; i++ {
		rows, err := harness.AblationPHT(ts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[0].MispIntPct, "gshare-int-misp-%")
			b.ReportMetric(rows[1].MispIntPct, "global-int-misp-%")
		}
	}
}

// BenchmarkCompareHeadlines measures the paper's headline claims
// (accuracy, dual/single ratios, near-block share) in one pass.
func BenchmarkCompareHeadlines(b *testing.B) {
	ts := traces(b)
	for i := 0; i < b.N; i++ {
		c, err := harness.Compare(ts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*c.IntAccuracy, "int-acc-%")
			b.ReportMetric(100*c.FPAccuracy, "fp-acc-%")
			b.ReportMetric(c.DualRatioInt, "dual-ratio-int")
			b.ReportMetric(c.DualRatioFP, "dual-ratio-fp")
			b.ReportMetric(100*c.NearShare, "near-share-%")
		}
	}
}

// BenchmarkBaselineBAC regenerates the introduction's comparison: the
// paper's linear-cost scheme vs Yeh's exponential-cost branch address
// cache at several sizes.
func BenchmarkBaselineBAC(b *testing.B) {
	ts := traces(b)
	for i := 0; i < b.N; i++ {
		rows, err := harness.Baseline(ts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				switch r.Scheme {
				case "Yeh BAC, 256 entries":
					b.ReportMetric(r.IPCfInt, "bac256-int-ipcf")
					b.ReportMetric(r.CostKbits, "bac256-kbits")
				case "blocked PHT + select table (paper)":
					b.ReportMetric(r.IPCfInt, "paper-int-ipcf")
					b.ReportMetric(r.CostKbits, "paper-kbits")
				}
			}
		}
	}
}

// BenchmarkEngineThroughput measures raw simulation speed: dynamic
// instructions processed per second by the default dual-block engine.
func BenchmarkEngineThroughput(b *testing.B) {
	ts := traces(b)
	tr := ts.Trace("gcc")
	b.SetBytes(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := NewEngine()
		if err != nil {
			b.Fatal(err)
		}
		res := e.Run(tr)
		if res.Instructions == 0 {
			b.Fatal("empty run")
		}
	}
	b.ReportMetric(float64(benchInstructions)*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
}
