package mbbp

import (
	"context"
	"fmt"

	"mbbp/internal/core"
	"mbbp/internal/trace"
)

// Run is the canonical simulation entry point: it validates cfg, builds
// a fresh engine, and drives it over src until the trace ends or ctx is
// cancelled. The CLI (cmd/mbpsim), the mbbpd service, and the examples
// all funnel through this one path, so a given (config, trace) pair
// produces the same Result everywhere.
//
// Cancellation is checked between fetch blocks (every few thousand
// records), so a cancelled Run returns promptly with ctx's error and no
// Result; an uncancelled Run is byte-for-byte identical to
// Engine.Run(src).
func Run(ctx context.Context, cfg Config, src TraceSource) (Result, error) {
	if src == nil {
		return Result{}, fmt.Errorf("mbbp: Run: nil trace source")
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	e, err := core.New(cfg)
	if err != nil {
		return Result{}, err
	}
	res := e.Run(trace.WithContext(ctx, src))
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	return res, nil
}

// RunMany simulates every configuration over one trace, walking the
// trace once per distinct cache geometry instead of once per
// configuration: configurations sharing a geometry run as lockstep
// lanes of a single pass (core.LaneSet), which is how a 20-config
// comparison costs roughly one simulation. Results come back in cfgs
// order, and each is byte-identical to Run(ctx, cfgs[i], src) — lane
// grouping is a performance detail, never a semantic one.
//
// Any invalid configuration fails the whole call (reporting its index),
// before any simulation runs. Cancellation is checked between fetch
// blocks, like Run.
func RunMany(ctx context.Context, cfgs []Config, src TraceSource) ([]Result, error) {
	if src == nil {
		return nil, fmt.Errorf("mbbp: RunMany: nil trace source")
	}
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("mbbp: RunMany: no configurations")
	}
	for i, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("mbbp: RunMany: config %d: %w", i, err)
		}
	}
	// Group by geometry, preserving first-appearance order and each
	// config's position.
	type group struct {
		cfgs []Config
		idx  []int
	}
	var order []Geometry
	groups := make(map[Geometry]*group)
	for i, cfg := range cfgs {
		g := groups[cfg.Geometry]
		if g == nil {
			g = &group{}
			groups[cfg.Geometry] = g
			order = append(order, cfg.Geometry)
		}
		g.cfgs = append(g.cfgs, cfg)
		g.idx = append(g.idx, i)
	}
	out := make([]Result, len(cfgs))
	wrapped := trace.WithContext(ctx, src)
	for _, geom := range order {
		g := groups[geom]
		ls, err := core.NewLanes(g.cfgs)
		if err != nil {
			return nil, err
		}
		rs := ls.Run(wrapped)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for l, i := range g.idx {
			out[i] = rs[l]
		}
	}
	return out, nil
}
