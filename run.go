package mbbp

import (
	"context"
	"fmt"

	"mbbp/internal/core"
	"mbbp/internal/trace"
)

// Run is the canonical simulation entry point: it validates cfg, builds
// a fresh engine, and drives it over src until the trace ends or ctx is
// cancelled. The CLI (cmd/mbpsim), the mbbpd service, and the examples
// all funnel through this one path, so a given (config, trace) pair
// produces the same Result everywhere.
//
// Cancellation is checked between fetch blocks (every few thousand
// records), so a cancelled Run returns promptly with ctx's error and no
// Result; an uncancelled Run is byte-for-byte identical to
// Engine.Run(src).
func Run(ctx context.Context, cfg Config, src TraceSource) (Result, error) {
	if src == nil {
		return Result{}, fmt.Errorf("mbbp: Run: nil trace source")
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	e, err := core.New(cfg)
	if err != nil {
		return Result{}, err
	}
	res := e.Run(trace.WithContext(ctx, src))
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	return res, nil
}
