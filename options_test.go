package mbbp

import (
	"context"
	"errors"
	"testing"
)

// The options path and the plain-struct path must describe the same
// configuration space: each With* option is equivalent to the struct
// mutation it replaces, so code migrating between the two styles cannot
// change behavior.
func TestOptionsMatchPlainStruct(t *testing.T) {
	cases := []struct {
		name   string
		opts   []Option
		mutate func(*Config)
	}{
		{"defaults", nil, func(c *Config) {}},
		{"history", []Option{WithHistoryBits(12)}, func(c *Config) { c.HistoryBits = 12 }},
		{"phts", []Option{WithPHTs(4)}, func(c *Config) { c.NumPHTs = 4 }},
		{"index", []Option{WithIndexMode(IndexGlobal)}, func(c *Config) { c.IndexMode = IndexGlobal }},
		{"sts", []Option{WithSelectTables(8)}, func(c *Config) { c.NumSTs = 8 }},
		{"ras", []Option{WithRAS(16)}, func(c *Config) { c.RASSize = 16 }},
		{"near", []Option{WithNearBlock()}, func(c *Config) { c.NearBlock = true }},
		{"bit", []Option{WithBIT(1024)}, func(c *Config) { c.BITEntries = 1024 }},
		{"nls", []Option{WithNLS(512)}, func(c *Config) {
			c.TargetArray = NLS
			c.TargetEntries = 512
		}},
		{"btb", []Option{WithBTB(256, 4)}, func(c *Config) {
			c.TargetArray = BTB
			c.TargetEntries = 256
			c.BTBAssoc = 4
		}},
		{"single block", []Option{WithSingleBlock()}, func(c *Config) { c.Mode = SingleBlock }},
		{"dual double sel", []Option{WithDualBlock(DoubleSelection)}, func(c *Config) {
			c.Selection = DoubleSelection
		}},
		{"blocks 4", []Option{WithBlocks(4)}, func(c *Config) { c.NumBlocks = 4 }},
		{"blocks 1", []Option{WithBlocks(1)}, func(c *Config) {
			c.Mode = SingleBlock
			c.NumBlocks = 1
		}},
		{"cache", []Option{WithCache(CacheSelfAligned, 16)}, func(c *Config) {
			c.Geometry = CacheGeometry(CacheSelfAligned, 16)
		}},
		{"geometry", []Option{WithGeometry(CacheGeometry(CacheExtended, 8))}, func(c *Config) {
			c.Geometry = CacheGeometry(CacheExtended, 8)
		}},
		{"icache model", []Option{WithICacheModel(64, 2, 10)}, func(c *Config) {
			c.ICacheLines = 64
			c.ICacheAssoc = 2
			c.ICacheMissPenalty = 10
		}},
		{"predictor paper", []Option{WithPredictor(PredictorPaper)}, func(c *Config) {}},
		{"predictor tage", []Option{WithPredictor(PredictorTAGE)}, func(c *Config) {
			c.Predictor = PredictorTAGE
		}},
		{"predictor tage tuned", []Option{WithPredictor(PredictorTAGE,
			TAGETables(6, 10), TAGETags(10), TAGEHistory(8, 128), TAGEBase(12),
			TAGEResetPeriod(4096))}, func(c *Config) {
			c.Predictor = PredictorTAGE
			c.TAGE = TAGEParams{Tables: 6, TableBits: 10, TagBits: 10,
				BaseBits: 12, MinHistory: 8, MaxHistory: 128, ResetPeriod: 4096}
		}},
		{"stacked", []Option{WithHistoryBits(12), WithNearBlock(), WithBTB(128, 4)}, func(c *Config) {
			c.HistoryBits = 12
			c.NearBlock = true
			c.TargetArray = BTB
			c.TargetEntries = 128
			c.BTBAssoc = 4
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := DefaultConfig()
			tc.mutate(&want)
			if got := NewConfig(tc.opts...); got != want {
				t.Errorf("NewConfig(...) = %+v\nwant %+v", got, want)
			}
		})
	}
}

// WithConfig is the bridge from plain structs into the options path;
// later options refine the imported value.
func TestWithConfigBridge(t *testing.T) {
	base := DefaultConfig()
	base.HistoryBits = 14
	got := NewConfig(WithConfig(base), WithSelectTables(4))
	if got.HistoryBits != 14 || got.NumSTs != 4 {
		t.Errorf("bridge config = %+v", got)
	}
}

// The plain-struct path must keep producing identical simulations to
// the options path — the compatibility guarantee of the API redesign.
func TestPlainStructCompat(t *testing.T) {
	tr, err := WorkloadTrace("li", 60_000)
	if err != nil {
		t.Fatal(err)
	}

	plain := DefaultConfig()
	plain.HistoryBits = 12
	plain.NearBlock = true
	pe, err := NewEngineFromConfig(plain)
	if err != nil {
		t.Fatal(err)
	}
	pres := pe.Run(tr)

	oe, err := NewEngine(WithHistoryBits(12), WithNearBlock())
	if err != nil {
		t.Fatal(err)
	}
	ores := oe.Run(tr)

	if pres != ores {
		t.Errorf("plain-struct result differs from options result:\n%+v\n%+v", pres, ores)
	}
}

func TestNewEngineInvalidOptions(t *testing.T) {
	_, err := NewEngine(WithHistoryBits(99))
	if err == nil {
		t.Fatal("invalid history accepted")
	}
	if !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("error %v does not wrap ErrInvalidConfig", err)
	}
	var fe *ConfigFieldError
	if !errors.As(err, &fe) || fe.Field != "HistoryBits" {
		t.Errorf("error %v does not carry the HistoryBits field", err)
	}
}

// Incompatible predictor combinations fail validation with field-level
// errors: TAGE knobs on the paper predictor, multiple PHTs under TAGE.
func TestPredictorOptionCompat(t *testing.T) {
	cases := []struct {
		name  string
		opts  []Option
		field string
	}{
		{"tage knobs on paper", []Option{WithPredictor(PredictorPaper, TAGETags(10))}, "TAGE"},
		{"phts under tage", []Option{WithPredictor(PredictorTAGE), WithPHTs(4)}, "NumPHTs"},
		{"global index under tage", []Option{
			WithPredictor(PredictorTAGE), WithIndexMode(IndexGlobal)}, "IndexMode"},
		{"bad tage range", []Option{WithPredictor(PredictorTAGE, TAGEHistory(64, 4))}, "TAGE.MinHistory"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewEngine(tc.opts...)
			if !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("error %v does not wrap ErrInvalidConfig", err)
			}
			var fe *ConfigFieldError
			if !errors.As(err, &fe) || fe.Field != tc.field {
				t.Errorf("error %v does not carry field %s", err, tc.field)
			}
		})
	}
	// The registry lists both strategies in a binary importing mbbp.
	kinds := RegisteredPredictors()
	if len(kinds) != 2 || kinds[0].Kind != PredictorPaper || kinds[1].Kind != PredictorTAGE {
		t.Errorf("RegisteredPredictors = %+v", kinds)
	}
	if k, err := ParsePredictorKind("tage"); err != nil || k != PredictorTAGE {
		t.Errorf("ParsePredictorKind(tage) = %v, %v", k, err)
	}
	if _, err := ParsePredictorKind("nonsense"); err == nil {
		t.Error("ParsePredictorKind accepted nonsense")
	}
}

// Run is the canonical entry point: identical results to Engine.Run,
// typed validation errors, and prompt cancellation.
func TestRunMatchesEngineRun(t *testing.T) {
	tr, err := WorkloadTrace("go", 60_000)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	want := eng.Run(tr)

	got, err := Run(context.Background(), NewConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("Run result differs from Engine.Run:\n%+v\n%+v", got, want)
	}
}

func TestRunValidates(t *testing.T) {
	tr, err := WorkloadTrace("li", 1_000)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(context.Background(), NewConfig(WithSelectTables(3)), tr)
	if !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("Run error = %v, want ErrInvalidConfig", err)
	}
	if _, err := Run(context.Background(), NewConfig(), nil); err == nil {
		t.Error("nil source accepted")
	}
}

func TestRunCancellation(t *testing.T) {
	tr, err := WorkloadTrace("li", 200_000)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, NewConfig(), tr); !errors.Is(err, context.Canceled) {
		t.Errorf("Run under cancelled ctx = %v, want context.Canceled", err)
	}
}
