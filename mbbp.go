package mbbp

import (
	"io"

	"mbbp/internal/asm"
	"mbbp/internal/bac"
	"mbbp/internal/core"
	"mbbp/internal/cost"
	"mbbp/internal/cpu"
	"mbbp/internal/icache"
	"mbbp/internal/isa"
	"mbbp/internal/metrics"
	"mbbp/internal/pht"
	_ "mbbp/internal/tage" // register the TAGE predictor strategy
	"mbbp/internal/trace"
	"mbbp/internal/workload"
)

// Core configuration and engine types.
type (
	// Config selects one fetch-architecture configuration.
	Config = core.Config
	// Engine is a configured instance of the paper's fetch hardware.
	Engine = core.Engine
	// Result carries the metrics of one simulation (BEP, IPC_f, IPB,
	// penalty breakdown).
	Result = metrics.Result
	// PenaltyKind is one row of the paper's Table 3.
	PenaltyKind = metrics.Kind
	// Geometry describes an instruction cache organization.
	Geometry = icache.Geometry
	// Program is an assembled mini-ISA program.
	Program = isa.Program
	// TraceSource yields retired instructions to an Engine.
	TraceSource = trace.Source
	// TraceBuffer is an in-memory trace.
	TraceBuffer = trace.Buffer
	// CostEstimate is a §5 hardware cost breakdown.
	CostEstimate = cost.Estimate
	// CostParams are the Table 7 symbols.
	CostParams = cost.Params
	// BaselineConfig sizes the Yeh/Marr/Patt branch-address-cache
	// baseline the paper compares against.
	BaselineConfig = bac.Config
	// BaselineEngine is the BAC-based fetch engine.
	BaselineEngine = bac.Engine
	// FetchEvent describes one fetch block as the engine handled it;
	// install an observer with Engine.SetObserver.
	FetchEvent = core.Event
	// FetchObserver receives per-block events.
	FetchObserver = core.Observer
	// EngineStats is a snapshot of predictor structure state
	// (Engine.Stats).
	EngineStats = core.StructStats
	// PredictorKind selects a direction-prediction strategy family
	// (PredictorPaper or PredictorTAGE).
	PredictorKind = core.PredictorKind
	// TAGEParams are the tagged-geometric strategy's knobs; the zero
	// value means all defaults.
	TAGEParams = core.TAGEParams
	// PredictorInfo describes one registered strategy.
	PredictorInfo = core.PredictorInfo
)

// LogObserver prints one line per fetch block, up to limit blocks.
func LogObserver(w io.Writer, limit uint64) FetchObserver {
	return &core.LogObserver{W: w, Limit: limit}
}

// Fetch modes, target array kinds, selection modes and cache kinds.
const (
	SingleBlock = core.SingleBlock
	DualBlock   = core.DualBlock

	NLS = core.NLS
	BTB = core.BTB

	SingleSelection = metrics.SingleSelection
	DoubleSelection = metrics.DoubleSelection

	// IndexGShare is the paper's GHR-XOR-address indexing; IndexGlobal
	// (history only) is kept as an ablation.
	IndexGShare = pht.IndexGShare
	IndexGlobal = pht.IndexGlobal

	CacheNormal      = icache.Normal
	CacheExtended    = icache.Extended
	CacheSelfAligned = icache.SelfAligned

	// PredictorPaper is the paper's blocked PHT (the default);
	// PredictorTAGE is the tagged-geometric alternative strategy.
	PredictorPaper = core.PredictorPaper
	PredictorTAGE  = core.PredictorTAGE
)

// RegisteredPredictors lists the strategy families linked into this
// binary, in kind order, with their default parameters.
func RegisteredPredictors() []PredictorInfo { return core.RegisteredPredictors() }

// ParsePredictorKind resolves a strategy's canonical spelling ("paper",
// "tage").
func ParsePredictorKind(s string) (PredictorKind, error) {
	return core.ParsePredictorKind(s)
}

// Configuration errors. Validate (and therefore NewEngine and Run)
// reports every invalid configuration as a *ConfigFieldError wrapping
// ErrInvalidConfig.
var ErrInvalidConfig = core.ErrInvalidConfig

// ConfigFieldError carries the field-level detail of a validation
// failure; recover it with errors.As.
type ConfigFieldError = core.FieldError

// DefaultConfig returns the paper's §4 defaults (block width 8, normal
// cache, 10-bit history, 256-entry NLS, dual-block single selection).
func DefaultConfig() Config { return core.DefaultConfig() }

// NewEngine builds a fetch engine from the paper's §4 defaults plus the
// given options:
//
//	eng, err := mbbp.NewEngine(mbbp.WithHistoryBits(12), mbbp.WithNearBlock())
//
// A configuration built elsewhere enters through WithConfig or
// NewEngineFromConfig. Invalid combinations return an error wrapping
// ErrInvalidConfig.
func NewEngine(opts ...Option) (*Engine, error) {
	return core.New(NewConfig(opts...))
}

// NewEngineFromConfig builds a fetch engine for a plain Config value —
// the original construction path, kept for code that assembles the
// struct directly. New code should prefer NewEngine with options, or
// Run.
func NewEngineFromConfig(cfg Config) (*Engine, error) { return core.New(cfg) }

// CacheGeometry returns the paper's Table 6 geometry for a cache kind
// and block width.
func CacheGeometry(kind icache.Kind, blockWidth int) Geometry {
	return icache.ForKind(kind, blockWidth)
}

// Workloads returns the names of the built-in benchmark suite (CINT95
// names first, then CFP95).
func Workloads() []string { return workload.Names() }

// IntWorkloads returns the integer benchmark names.
func IntWorkloads() []string { return workload.IntNames() }

// FPWorkloads returns the floating-point benchmark names.
func FPWorkloads() []string { return workload.FPNames() }

// WorkloadTrace executes a built-in benchmark for n dynamic
// instructions and returns its trace.
func WorkloadTrace(name string, n uint64) (*TraceBuffer, error) {
	b, err := workload.Get(name)
	if err != nil {
		return nil, err
	}
	return b.Trace(n)
}

// Assemble assembles mini-ISA source text into a program; see
// internal/asm for the syntax.
func Assemble(name, source string) (*Program, error) {
	return asm.Assemble(name, source)
}

// CaptureTrace runs an assembled program for n instructions and returns
// the trace it produces.
func CaptureTrace(p *Program, n uint64) (*TraceBuffer, error) {
	return trace.Capture(p, cpu.DefaultConfig(), n)
}

// ScalarMispredictRate runs the Figure 6 scalar two-level baseline over
// a trace and returns its conditional misprediction rate.
func ScalarMispredictRate(src TraceSource, historyBits, numTables int) float64 {
	return core.RunScalar(src, historyBits, numTables).MispredictRate()
}

// EstimateCost evaluates the §5 cost model.
func EstimateCost(p CostParams) CostEstimate { return cost.Compute(p) }

// PaperCostParams returns the §5 walkthrough parameters (W=8, 10-bit
// history, 256-entry NLS, 1024-entry BIT, 8 BBR entries).
func PaperCostParams() CostParams { return cost.PaperParams() }

// DefaultBaselineConfig returns a 256-entry 4-way BAC baseline matched
// to the main engine's defaults.
func DefaultBaselineConfig() BaselineConfig { return bac.DefaultConfig() }

// NewBaselineEngine builds the Yeh-style branch-address-cache baseline
// (reference [11] of the paper), whose per-entry cost grows
// exponentially with the branches predicted per cycle.
func NewBaselineEngine(cfg BaselineConfig) (*BaselineEngine, error) { return bac.New(cfg) }

// BaselineCostBits estimates BAC storage (see bac.CostBits).
func BaselineCostBits(entries, addrBits, branches int) int {
	return bac.CostBits(entries, addrBits, branches)
}
