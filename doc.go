// Package mbbp is a reproduction of "Multiple Branch and Block
// Prediction" (Steven Wallace and Nader Bagherzadeh, HPCA-3, 1997): a
// trace-driven simulator for wide-issue instruction fetch prediction.
//
// The paper's mechanisms are all here:
//
//   - a blocked pattern history table that predicts every conditional
//     branch position of a fetch block in one lookup (§2),
//   - block instruction type (BIT) tables, NLS/BTB target arrays with
//     optional near-block target encoding, and a return address stack
//     with dual-block bypassing,
//   - select tables that memoize multiplexer selections so two blocks
//     are predicted per cycle without serialization (§3), in single-
//     and double-selection variants,
//   - the Table 3 misprediction penalty model, bad-branch-recovery
//     bookkeeping (Table 4), three instruction cache organizations
//     (normal, extended, self-aligned; §4.5), and the §5 hardware cost
//     model.
//
// Because the predictors observe only dynamic control flow, the paper's
// SPEC95/SPARC/Shade substrate is replaced by a small RISC ISA, an
// assembler, a functional CPU simulator, and an 18-program workload
// suite named after SPEC95 (see DESIGN.md for the substitution
// argument).
//
// Quick start:
//
//	tr, _ := mbbp.WorkloadTrace("compress", 1_000_000)
//	eng, _ := mbbp.NewEngine(mbbp.DefaultConfig())
//	res := eng.Run(tr)
//	fmt.Printf("IPC_f = %.2f, BEP = %.3f\n", res.IPCf(), res.BEP())
//
// The cmd/mbpexp tool regenerates every table and figure of the paper's
// evaluation; see EXPERIMENTS.md for measured-vs-paper results.
package mbbp
