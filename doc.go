// Package mbbp is a reproduction of "Multiple Branch and Block
// Prediction" (Steven Wallace and Nader Bagherzadeh, HPCA-3, 1997): a
// trace-driven simulator for wide-issue instruction fetch prediction.
//
// The paper's mechanisms are all here:
//
//   - a blocked pattern history table that predicts every conditional
//     branch position of a fetch block in one lookup (§2),
//   - block instruction type (BIT) tables, NLS/BTB target arrays with
//     optional near-block target encoding, and a return address stack
//     with dual-block bypassing,
//   - select tables that memoize multiplexer selections so two blocks
//     are predicted per cycle without serialization (§3), in single-
//     and double-selection variants,
//   - the Table 3 misprediction penalty model, bad-branch-recovery
//     bookkeeping (Table 4), three instruction cache organizations
//     (normal, extended, self-aligned; §4.5), and the §5 hardware cost
//     model.
//
// Because the predictors observe only dynamic control flow, the paper's
// SPEC95/SPARC/Shade substrate is replaced by a small RISC ISA, an
// assembler, a functional CPU simulator, and an 18-program workload
// suite named after SPEC95 (see DESIGN.md for the substitution
// argument).
//
// # Quick start
//
// Configurations are assembled with functional options over the
// paper's §4 defaults and run through the canonical entry point
// [Run]:
//
//	tr, _ := mbbp.WorkloadTrace("compress", 1_000_000)
//	cfg := mbbp.NewConfig(mbbp.WithHistoryBits(12), mbbp.WithNearBlock())
//	res, err := mbbp.Run(context.Background(), cfg, tr)
//	if err != nil { ... }
//	fmt.Printf("IPC_f = %.2f, BEP = %.3f\n", res.IPCf(), res.BEP())
//
// [Run] validates the configuration (every failure satisfies
// errors.Is(err, [ErrInvalidConfig]) and names the offending field via
// [ConfigFieldError]), honors context cancellation mid-simulation, and
// is the same code path the mbpsim CLI and the mbbpd service execute —
// results are identical across all three.
//
// For repeated runs over one configuration, [NewEngine] builds a
// reusable engine from the same options:
//
//	eng, err := mbbp.NewEngine(mbbp.WithSingleBlock())
//
// # Predictor strategies
//
// Block-level direction prediction is pluggable: the paper's blocked
// PHT ([PredictorPaper], the default) and a tagged-geometric
// alternative ([PredictorTAGE]) implement one strategy contract over
// the same BIT/select-table/target-array machinery. [WithPredictor]
// selects the family and composes with the shared options; the TAGE*
// options tune the tagged tables:
//
//	eng, err := mbbp.NewEngine(
//		mbbp.WithPredictor(mbbp.PredictorTAGE, mbbp.TAGEHistory(4, 64)),
//	)
//
// [RegisteredPredictors] lists the linked strategies with their
// defaults, and Engine.StateBits reports each strategy's honest
// Table 7 storage cost, so accuracy-per-bit comparisons (mbpexp
// compare -predictor tage) need no hand-derived formulas. See
// [ExampleWithPredictor] for a runnable side-by-side comparison.
//
// # Deprecated: plain-struct construction
//
// The original pattern — mutating a [Config] struct by hand and
// passing it to an engine constructor — still works via
// [NewEngineFromConfig] and remains supported for existing callers,
// but new code should prefer the options form: it validates eagerly,
// composes, and keeps defaults in one place.
//
// The cmd/mbpexp tool regenerates every table and figure of the paper's
// evaluation (see EXPERIMENTS.md for measured-vs-paper results), and
// cmd/mbbpd serves sweeps over HTTP/JSON (see docs/ARCHITECTURE.md).
package mbbp
