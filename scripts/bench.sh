#!/bin/sh
# Reproducible benchmark pipeline: build mbpexp, time the pinned sweep
# set serially per-config, serially on the slice-backed reference
# storage (packed-vs-reference ns/instruction), serially with
# config-parallel lanes (lane_speedup = per-config / lanes), and then
# across the worker matrix (GOMAXPROCS pinned to each worker count,
# pool telemetry snapshotted per row), and record the result in
# BENCH_sweep.json (schema mbbp/bench-sweep/v5), then validate it.
#
# Usage: scripts/bench.sh [instructions-per-program]
# Default 200000 keeps a full run under a minute on a laptop while still
# dominating per-job overhead. Simulated results are deterministic —
# only the recorded timings vary between machines; the validation step
# checks the schema and internal consistency, not absolute speed, unless
# BENCH_MIN_SPEEDUP is set.
#
# Environment:
#   BENCH_OUT          output path (default BENCH_sweep.json in the repo root)
#   BENCH_WORKERS      comma-separated worker-matrix counts (default 1,2,4,NumCPU)
#   BENCH_MIN_SPEEDUP  if set, benchcheck additionally gates the fig6
#                      speedup at 4 workers against this floor; the gate
#                      refuses to certify a host with fewer than 4 cores.
set -eu

N="${1:-200000}"
OUT="${BENCH_OUT:-BENCH_sweep.json}"
WORKERS="${BENCH_WORKERS:-}"
MIN_SPEEDUP="${BENCH_MIN_SPEEDUP:-0}"

echo "building mbpexp..."
go build -o /tmp/mbpexp.$$ ./cmd/mbpexp
trap 'rm -f /tmp/mbpexp.$$' EXIT

echo "benchmarking ($N instructions/program)..."
/tmp/mbpexp.$$ -n "$N" -benchout "$OUT" -workers "$WORKERS" bench

echo "validating $OUT..."
/tmp/mbpexp.$$ -benchout "$OUT" -minspeedup "$MIN_SPEEDUP" benchcheck
