#!/bin/sh
# Reproducible benchmark pipeline: build mbpexp, time the pinned sweep
# set serially per-config, on the work-stealing pool, serially on the
# slice-backed reference storage (packed-vs-reference ns/instruction),
# and serially with config-parallel lanes (lane_speedup = per-config /
# lanes), and record the result in BENCH_sweep.json (schema
# mbbp/bench-sweep/v3), then validate it.
#
# Usage: scripts/bench.sh [instructions-per-program]
# Default 200000 keeps a full run under a minute on a laptop while still
# dominating per-job overhead. Simulated results are deterministic —
# only the recorded timings vary between machines; CI checks the schema
# and internal consistency, not absolute speed.
#
# Environment:
#   BENCH_OUT  output path (default BENCH_sweep.json in the repo root)
set -eu

N="${1:-200000}"
OUT="${BENCH_OUT:-BENCH_sweep.json}"

echo "building mbpexp..."
go build -o /tmp/mbpexp.$$ ./cmd/mbpexp
trap 'rm -f /tmp/mbpexp.$$' EXIT

echo "benchmarking ($N instructions/program)..."
/tmp/mbpexp.$$ -n "$N" -benchout "$OUT" bench

echo "validating $OUT..."
/tmp/mbpexp.$$ -benchout "$OUT" benchcheck
