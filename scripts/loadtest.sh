#!/bin/sh
# Load test for the mbbpd simulation service: boot a server, fire
# concurrent sweep requests (a mix of configurations, JSON and NDJSON
# streaming), verify every response is complete and identical across
# repeats of the same request, then check overload behavior (429) and
# a clean drain on SIGTERM.
#
# Usage: scripts/loadtest.sh [clients] [instructions-per-program]
# Defaults: 64 clients, 50000 instructions. Needs curl.
#
# Environment:
#   MBBPD_ADDR  listen address (default 127.0.0.1:8329)
#   MBBPD_RACE  set to 1 to build the server with -race
set -eu

CLIENTS="${1:-64}"
N="${2:-50000}"
ADDR="${MBBPD_ADDR:-127.0.0.1:8329}"
BASE="http://$ADDR"
DIR="$(mktemp -d)"
BIN="$DIR/mbbpd"

RACEFLAG=""
[ "${MBBPD_RACE:-0}" = "1" ] && RACEFLAG="-race"

echo "building mbbpd ${RACEFLAG:+(race) }..."
# shellcheck disable=SC2086
go build $RACEFLAG -o "$BIN" ./cmd/mbbpd

"$BIN" -addr "$ADDR" -queue "$CLIENTS" -max-instructions 10000000 2>"$DIR/server.log" &
SRV=$!
cleanup() {
    kill "$SRV" 2>/dev/null || true
    wait "$SRV" 2>/dev/null || true
    rm -rf "$DIR"
}
trap cleanup EXIT

echo "waiting for $BASE/healthz..."
i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "server never came up"; cat "$DIR/server.log"; exit 1; }
    sleep 0.1
done

# Three request bodies: default, near-block+BTB, double selection.
cat >"$DIR/req0.json" <<EOF
{"programs":["li","go","swim"],"instructions":$N}
EOF
cat >"$DIR/req1.json" <<EOF
{"config":{"NearBlock":true,"TargetArray":1,"TargetEntries":64},"programs":["li","go","swim"],"instructions":$N}
EOF
cat >"$DIR/req2.json" <<EOF
{"config":{"Selection":1,"NumSTs":4},"programs":["li","go","swim"],"instructions":$N}
EOF

echo "reference responses..."
for c in 0 1 2; do
    curl -fsS -d @"$DIR/req$c.json" "$BASE/v1/sweep" >"$DIR/want$c.json"
done

echo "firing $CLIENTS concurrent clients..."
PIDS=""
c=0
while [ "$c" -lt "$CLIENTS" ]; do
    ci=$((c % 3))
    if [ $((c % 4)) -eq 3 ]; then
        curl -fsS -d @"$DIR/req$ci.json" "$BASE/v1/sweep?stream=ndjson" >"$DIR/got$c.ndjson" &
    else
        curl -fsS -d @"$DIR/req$ci.json" "$BASE/v1/sweep" >"$DIR/got$c.json" &
    fi
    PIDS="$PIDS $!"
    c=$((c + 1))
done
for p in $PIDS; do
    wait "$p" || { echo "FAIL: a client request failed"; exit 1; }
done

fail=0
c=0
while [ "$c" -lt "$CLIENTS" ]; do
    ci=$((c % 3))
    if [ $((c % 4)) -eq 3 ]; then
        # Streamed: 3 program lines + 1 aggregates line, aggregates last.
        lines=$(wc -l <"$DIR/got$c.ndjson")
        if [ "$lines" -ne 4 ] || ! tail -1 "$DIR/got$c.ndjson" | grep -q '"aggregates"'; then
            echo "FAIL: client $c stream truncated ($lines lines)"
            fail=1
        fi
    elif ! cmp -s "$DIR/got$c.json" "$DIR/want$ci.json"; then
        echo "FAIL: client $c response differs from reference (config $ci)"
        fail=1
    fi
    c=$((c + 1))
done
[ "$fail" -eq 0 ] && echo "all $CLIENTS responses complete and byte-identical to references"

echo "metrics:"
curl -fsS "$BASE/metrics" >"$DIR/metrics.json"
tr ',' '\n' <"$DIR/metrics.json" | grep -E 'requests_(total|ok|rejected)|trace_cache' || true
# The service accounted every request (references + clients) as OK.
expect_ok=$((CLIENTS + 3))
if ! grep -q "\"requests_ok\": $expect_ok" "$DIR/metrics.json"; then
    echo "FAIL: /metrics requests_ok != $expect_ok"
    fail=1
fi

echo "overload check (queue=1 server)..."
ADDR2="${ADDR%:*}:$(( ${ADDR##*:} + 1 ))"
"$BIN" -addr "$ADDR2" -queue 1 -max-instructions 10000000 2>"$DIR/server2.log" &
SRV2=$!
trap 'kill "$SRV2" 2>/dev/null || true; cleanup' EXIT
until curl -fsS "http://$ADDR2/healthz" >/dev/null 2>&1; do sleep 0.1; done
codes="$DIR/codes.txt"
: >"$codes"
PIDS=""
c=0
while [ "$c" -lt 8 ]; do
    curl -s -o /dev/null -w '%{http_code}\n' -d @"$DIR/req0.json" \
        "http://$ADDR2/v1/sweep" >>"$codes" &
    PIDS="$PIDS $!"
    c=$((c + 1))
done
for p in $PIDS; do
    wait "$p" || true
done
if grep -q '^429$' "$codes"; then
    echo "overload produced 429s: $(sort "$codes" | uniq -c | tr '\n' ' ')"
else
    echo "WARN: no 429 observed (requests may have finished too fast)"
fi

echo "graceful drain..."
kill -TERM "$SRV"
if wait "$SRV"; then
    echo "server drained cleanly"
else
    echo "FAIL: server exited non-zero on SIGTERM"
    fail=1
fi

exit "$fail"
