#!/bin/sh
# Load test for the mbbpd simulation service, in four phases:
#
#   1. correctness — boot a server, fire concurrent sweep requests (a
#      mix of configurations, JSON and NDJSON streaming), verify every
#      response is complete and byte-identical across repeats of the
#      same request, and that the result cache absorbed the repeats.
#   2. overload — a queue=1 server under concurrent DISTINCT sweeps
#      must shed load with 429s. (Identical sweeps no longer overload
#      anything: they coalesce onto one flight.)
#   3. scaling — a front-end sharding over 2 replicas takes a cold
#      phase (distinct keys, routed across the ring) then a hot phase
#      (repeated keys). Reports the measured result-cache hit rate
#      (enforced floor, default 60%) and hot-phase tail latency.
#   4. drain — SIGTERM produces a clean exit; the final metrics scrape
#      intentionally races the drain and is tolerated if it loses.
#
# Usage: scripts/loadtest.sh [clients] [instructions-per-program]
# Defaults: 64 clients, 50000 instructions. Needs curl.
#
# Environment:
#   MBBPD_ADDR           listen address (default 127.0.0.1:8329);
#                        phases 2-3 use the next few ports up
#   MBBPD_RACE           set to 1 to build the server with -race
#   MBBPD_HITRATE_FLOOR  minimum hot-phase hit rate in percent
#                        (default 60; 0 disables the check)
set -eu

CLIENTS="${1:-64}"
N="${2:-50000}"
ADDR="${MBBPD_ADDR:-127.0.0.1:8329}"
BASE="http://$ADDR"
HITFLOOR="${MBBPD_HITRATE_FLOOR:-60}"
DIR="$(mktemp -d)"
BIN="$DIR/mbbpd"

HOST="${ADDR%:*}"
PORT="${ADDR##*:}"

RACEFLAG=""
[ "${MBBPD_RACE:-0}" = "1" ] && RACEFLAG="-race"

echo "building mbbpd ${RACEFLAG:+(race) }..."
# shellcheck disable=SC2086
go build $RACEFLAG -o "$BIN" ./cmd/mbbpd

PIDS_ALL=""
cleanup() {
    for p in $PIDS_ALL; do
        kill "$p" 2>/dev/null || true
    done
    for p in $PIDS_ALL; do
        wait "$p" 2>/dev/null || true
    done
    rm -rf "$DIR"
}
trap cleanup EXIT

# start_server <addr> <logfile> [extra flags...] -> pid in $SRV_PID
start_server() {
    sa="$1"; slog="$2"; shift 2
    "$BIN" -addr "$sa" -max-instructions 10000000 "$@" 2>"$DIR/$slog" &
    SRV_PID=$!
    PIDS_ALL="$PIDS_ALL $SRV_PID"
    i=0
    until curl -fsS "http://$sa/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && { echo "server at $sa never came up"; cat "$DIR/$slog"; exit 1; }
        sleep 0.1
    done
}

echo "booting server at $BASE..."
start_server "$ADDR" server.log -queue "$CLIENTS"
SRV=$SRV_PID

# Three request bodies: default, near-block+BTB, double selection.
cat >"$DIR/req0.json" <<EOF
{"programs":["li","go","swim"],"instructions":$N}
EOF
cat >"$DIR/req1.json" <<EOF
{"config":{"NearBlock":true,"TargetArray":1,"TargetEntries":64},"programs":["li","go","swim"],"instructions":$N}
EOF
cat >"$DIR/req2.json" <<EOF
{"config":{"Selection":1,"NumSTs":4},"programs":["li","go","swim"],"instructions":$N}
EOF

echo "reference responses..."
for c in 0 1 2; do
    curl -fsS -d @"$DIR/req$c.json" "$BASE/v1/sweep" >"$DIR/want$c.json"
done

echo "firing $CLIENTS concurrent clients..."
PIDS=""
c=0
while [ "$c" -lt "$CLIENTS" ]; do
    ci=$((c % 3))
    if [ $((c % 4)) -eq 3 ]; then
        curl -fsS -d @"$DIR/req$ci.json" "$BASE/v1/sweep?stream=ndjson" >"$DIR/got$c.ndjson" &
    else
        curl -fsS -d @"$DIR/req$ci.json" "$BASE/v1/sweep" >"$DIR/got$c.json" &
    fi
    PIDS="$PIDS $!"
    c=$((c + 1))
done
for p in $PIDS; do
    wait "$p" || { echo "FAIL: a client request failed"; exit 1; }
done

fail=0
c=0
while [ "$c" -lt "$CLIENTS" ]; do
    ci=$((c % 3))
    if [ $((c % 4)) -eq 3 ]; then
        # Streamed: 3 program lines + 1 aggregates line, aggregates last.
        lines=$(wc -l <"$DIR/got$c.ndjson")
        if [ "$lines" -ne 4 ] || ! tail -1 "$DIR/got$c.ndjson" | grep -q '"aggregates"'; then
            echo "FAIL: client $c stream truncated ($lines lines)"
            fail=1
        fi
    elif ! cmp -s "$DIR/got$c.json" "$DIR/want$ci.json"; then
        echo "FAIL: client $c response differs from reference (config $ci)"
        fail=1
    fi
    c=$((c + 1))
done
[ "$fail" -eq 0 ] && echo "all $CLIENTS responses complete and byte-identical to references"

echo "metrics:"
curl -fsS "$BASE/metrics" >"$DIR/metrics.json"
tr ',' '\n' <"$DIR/metrics.json" | grep -E 'requests_(total|ok|rejected)|trace_cache|result_cache' || true
# The service accounted every request (references + clients) as OK.
expect_ok=$((CLIENTS + 3))
if ! grep -q "\"requests_ok\": $expect_ok" "$DIR/metrics.json"; then
    echo "FAIL: /metrics requests_ok != $expect_ok"
    fail=1
fi
# The JSON clients repeat the 3 reference bodies: only the references
# themselves may miss; every repeat must hit or coalesce, never
# recompute. (NDJSON streams bypass the cache and count nowhere.)
rc_misses=$(tr ',' '\n' <"$DIR/metrics.json" | grep '"result_cache_misses"' | grep -o '[0-9][0-9]*' || echo "")
if [ "${rc_misses:-0}" -ne 3 ]; then
    echo "FAIL: result_cache_misses = ${rc_misses:-absent}, want 3 (references only)"
    fail=1
fi

echo "overload check (queue=1 server, distinct configs)..."
ADDR2="$HOST:$((PORT + 1))"
start_server "$ADDR2" server2.log -queue 1
codes="$DIR/codes.txt"
: >"$codes"
PIDS=""
c=0
while [ "$c" -lt 8 ]; do
    # Each request gets its own instruction count: identical bodies
    # would coalesce onto one flight and never trip backpressure.
    printf '{"programs":["li","go","swim"],"instructions":%d}' $((N + c + 1)) >"$DIR/over$c.json"
    curl -s -o /dev/null -w '%{http_code}\n' -d @"$DIR/over$c.json" \
        "http://$ADDR2/v1/sweep" >>"$codes" &
    PIDS="$PIDS $!"
    c=$((c + 1))
done
for p in $PIDS; do
    wait "$p" || true
done
if grep -q '^429$' "$codes"; then
    echo "overload produced 429s: $(sort "$codes" | uniq -c | tr '\n' ' ')"
else
    echo "WARN: no 429 observed (requests may have finished too fast)"
fi

echo "scaling story: front-end + 2 replicas..."
R1="$HOST:$((PORT + 2))"
R2="$HOST:$((PORT + 3))"
FADDR="$HOST:$((PORT + 4))"
FBASE="http://$FADDR"
start_server "$R1" replica1.log -queue "$CLIENTS"
start_server "$R2" replica2.log -queue "$CLIENTS"
start_server "$FADDR" front.log -queue "$CLIENTS" -shard-of "$R1,$R2"
FRONT=$SRV_PID

# Cold phase: distinct keys fan out over the ring.
COLD=16
echo "  cold phase: $COLD distinct sweeps..."
PIDS=""
c=0
while [ "$c" -lt "$COLD" ]; do
    printf '{"programs":["li"],"instructions":%d}' $((N / 10 + c)) >"$DIR/cold$c.json"
    curl -fsS -d @"$DIR/cold$c.json" "$FBASE/v1/sweep" >/dev/null &
    PIDS="$PIDS $!"
    c=$((c + 1))
done
for p in $PIDS; do
    wait "$p" || { echo "FAIL: cold sweep failed"; exit 1; }
done
curl -fsS "$FBASE/metrics?format=prom" >"$DIR/cold.prom"
for r in "$R1" "$R2"; do
    if ! grep "mbbpd_shard_routes_total{replica=\"$r\"}" "$DIR/cold.prom" \
            | grep -qv ' 0$'; then
        echo "FAIL: replica $r received no cold traffic"
        fail=1
    fi
done

# Hot phase: warm the 3 request bodies, then hammer them.
echo "  hot phase: warm 3 keys, then $CLIENTS repeat clients..."
for c in 0 1 2; do
    curl -fsS -d @"$DIR/req$c.json" "$FBASE/v1/sweep" >"$DIR/hotwant$c.json"
done
times="$DIR/hot_times.txt"
: >"$times"
PIDS=""
c=0
while [ "$c" -lt "$CLIENTS" ]; do
    ci=$((c % 3))
    { curl -fsS -o "$DIR/hot$c.json" -w '%{time_total}\n' \
        -d @"$DIR/req$ci.json" "$FBASE/v1/sweep" >>"$times"; } &
    PIDS="$PIDS $!"
    c=$((c + 1))
done
for p in $PIDS; do
    wait "$p" || { echo "FAIL: hot sweep failed"; exit 1; }
done
c=0
while [ "$c" -lt "$CLIENTS" ]; do
    if ! cmp -s "$DIR/hot$c.json" "$DIR/hotwant$((c % 3)).json"; then
        echo "FAIL: hot client $c body differs from its warm reference"
        fail=1
    fi
    c=$((c + 1))
done

curl -fsS "$FBASE/metrics?format=prom" >"$DIR/hot.prom"
prom_val() {
    v=$(grep "^$2 " "$1" | awk '{print $2}' | head -1)
    echo "${v:-0}"
}
# Hit rate over the hot phase alone: delta between the post-cold and
# post-hot scrapes (the cold fan-out is all misses by design).
hits=$(( $(prom_val "$DIR/hot.prom" mbbpd_result_cache_hits_total) \
       - $(prom_val "$DIR/cold.prom" mbbpd_result_cache_hits_total) ))
misses=$(( $(prom_val "$DIR/hot.prom" mbbpd_result_cache_misses_total) \
         - $(prom_val "$DIR/cold.prom" mbbpd_result_cache_misses_total) ))
coal=$(( $(prom_val "$DIR/hot.prom" mbbpd_result_cache_coalesced_total) \
       - $(prom_val "$DIR/cold.prom" mbbpd_result_cache_coalesced_total) ))
total=$((hits + misses + coal))
if [ "$total" -gt 0 ]; then
    rate=$((100 * (hits + coal) / total))
else
    rate=0
fi
echo "  hot-phase result cache: hits=$hits coalesced=$coal misses=$misses (hit rate ${rate}%)"
if [ "$HITFLOOR" -gt 0 ] && [ "$rate" -lt "$HITFLOOR" ]; then
    echo "FAIL: hit rate ${rate}% below floor ${HITFLOOR}%"
    fail=1
fi
sort -n "$times" >"$DIR/hot_sorted.txt"
nlat=$(wc -l <"$DIR/hot_sorted.txt")
p50=$(awk -v n="$nlat" 'NR == int((n * 50 + 99) / 100)' "$DIR/hot_sorted.txt")
p95=$(awk -v n="$nlat" 'NR == int((n * 95 + 99) / 100)' "$DIR/hot_sorted.txt")
pmax=$(tail -1 "$DIR/hot_sorted.txt")
echo "  hot-phase latency: p50=${p50}s p95=${p95}s max=${pmax}s over $nlat requests"

echo "graceful drain..."
kill -TERM "$FRONT"
# This scrape deliberately races the front-end drain. Losing the race
# is fine: report whatever stats we already have instead of dying.
if curl -fsS --max-time 2 "$FBASE/metrics?format=prom" >"$DIR/final.prom" 2>/dev/null; then
    echo "final scrape caught the draining front-end ($(grep -c '^mbbpd_' "$DIR/final.prom") series)"
else
    echo "final metrics scrape raced the drain (tolerated); last good stats are above"
fi
if wait "$FRONT"; then
    echo "front-end drained cleanly"
else
    echo "FAIL: front-end exited non-zero on SIGTERM"
    fail=1
fi
kill -TERM "$SRV"
if wait "$SRV"; then
    echo "server drained cleanly"
else
    echo "FAIL: server exited non-zero on SIGTERM"
    fail=1
fi

exit "$fail"
