#!/bin/sh
# Coverage gate: run the full test suite with a merged statement
# coverage profile and fail if any package listed in
# testdata/coverage_floor.txt has dropped below its committed floor.
#
# Usage: scripts/coverage.sh [profile-out]
# The merged profile lands in profile-out (default coverage.out) so CI
# can upload it as an artifact; the per-package gate reads the `go
# test` summary lines, not the profile.
set -eu

OUT="${1:-coverage.out}"
FLOORS="testdata/coverage_floor.txt"
LOG="$(mktemp)"
trap 'rm -f "$LOG"' EXIT

echo "running tests with coverage..."
go test -count=1 -coverprofile="$OUT" ./... | tee "$LOG"

status=0
while read -r pkg floor; do
    case "$pkg" in
    '' | '#'*) continue ;;
    esac
    pct=$(awk -v pkg="$pkg" '
        $1 == "ok" && $2 == pkg {
            for (i = 1; i <= NF; i++)
                if ($i ~ /%$/) { gsub(/%/, "", $i); print $i; exit }
        }' "$LOG")
    if [ -z "$pct" ]; then
        echo "coverage: FAIL $pkg: no test result (package removed? update $FLOORS)"
        status=1
        continue
    fi
    if awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p < f) }'; then
        echo "coverage: FAIL $pkg: $pct% < floor $floor%"
        status=1
    else
        echo "coverage: ok   $pkg: $pct% >= $floor%"
    fi
done <"$FLOORS"

if [ "$status" -ne 0 ]; then
    echo "coverage: gate failed — either restore the lost tests or justify lowering the floor in $FLOORS"
fi
exit "$status"
