#!/bin/sh
# Regenerate every result in EXPERIMENTS.md into ./out: the text tables,
# machine-readable CSVs, and the self-contained markdown report.
#
# Usage: scripts/reproduce.sh [instructions-per-program]
# Default 2000000 matches the numbers committed in EXPERIMENTS.md;
# results are deterministic, so reruns are byte-identical.
set -eu

N="${1:-2000000}"
OUT="out"
mkdir -p "$OUT"

# Tier-1 gate: refuse to regenerate artifacts from a tree that does
# not build or whose tests fail (set -e aborts on the first failure).
echo "tier-1 gate: go build && go vet && go test..."
go build ./...
go vet ./...
go test ./... > /dev/null

echo "building..."
go build -o "$OUT/mbpexp" ./cmd/mbpexp

run() {
    echo "  $1"
    "$OUT/mbpexp" -n "$N" "$1" > "$OUT/$1.txt"
}
runcsv() {
    echo "  $1.csv"
    "$OUT/mbpexp" -n "$N" -csv "$1" > "$OUT/$1.csv"
}

echo "experiments ($N instructions/program)..."
for exp in fig6 fig7 fig8 fig9 table5 table6 cost compare baseline extblocks ablation widths icache; do
    run "$exp"
done
echo "seeds (this one re-traces per seed, be patient)..."
run seeds

echo "CSV series..."
for exp in fig6 fig7 fig8 fig9 table5 table6; do
    runcsv "$exp"
done

echo "markdown report..."
"$OUT/mbpexp" -n "$N" report > "$OUT/report.md"

echo "done: $(ls "$OUT" | wc -l) artifacts in $OUT/"
