package mbbp

// End-to-end tests of the command-line tools: build the real binaries
// and drive them the way a user would. Skipped under -short.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

func buildTools(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("short mode: skipping CLI end-to-end tests")
	}
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "mbbp-bin")
		if err != nil {
			buildErr = err
			return
		}
		binDir = dir
		for _, tool := range []string{"mbpsim", "mbpexp", "mbpasm"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
			if out, err := cmd.CombinedOutput(); err != nil {
				buildErr = err
				t.Logf("build %s: %s", tool, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("building tools: %v", buildErr)
	}
	return binDir
}

func runTool(t *testing.T, name string, args ...string) string {
	t.Helper()
	dir := buildTools(t)
	cmd := exec.Command(filepath.Join(dir, name), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestE2ESim(t *testing.T) {
	out := runTool(t, "mbpsim", "-n", "60000", "compress", "swim")
	for _, want := range []string{"config:", "compress", "swim", "CINT95", "CFP95", "IPC_f"} {
		if !strings.Contains(out, want) {
			t.Errorf("mbpsim output missing %q:\n%s", want, out)
		}
	}
}

func TestE2ESimLog(t *testing.T) {
	out := runTool(t, "mbpsim", "-n", "30000", "-log", "5", "li")
	if strings.Count(out, "cyc ") != 5 {
		t.Errorf("expected 5 log lines:\n%s", out)
	}
}

func TestE2EExpCost(t *testing.T) {
	out := runTool(t, "mbpexp", "cost")
	for _, want := range []string{"52.3", "80.3", "72.3"} {
		if !strings.Contains(out, want) {
			t.Errorf("mbpexp cost missing %q:\n%s", want, out)
		}
	}
}

func TestE2EExpFig6Subset(t *testing.T) {
	out := runTool(t, "mbpexp", "-n", "50000", "-programs", "li,swim", "fig6")
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "hist") {
		t.Errorf("mbpexp fig6 malformed:\n%s", out)
	}
}

func TestE2EAsmTraceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "li.trace")
	out := runTool(t, "mbpasm", "-workload", "li", "-run", "40000", "-savetrace", tracePath)
	if !strings.Contains(out, "wrote 40000 records") {
		t.Fatalf("savetrace failed:\n%s", out)
	}
	out = runTool(t, "mbpsim", "-tracefile", tracePath)
	if !strings.Contains(out, "li:") || !strings.Contains(out, "IPC_f") {
		t.Errorf("tracefile run malformed:\n%s", out)
	}
}

func TestE2EAsmFile(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "prog.s")
	if err := os.WriteFile(src, []byte(`
main:
    li r1, 50
loop:
    subi r1, r1, 1
    bnez r1, loop
    halt
`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runTool(t, "mbpasm", "-dump", src)
	for _, want := range []string{"4 instructions", "main:", "bne r1, r0, 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("mbpasm dump missing %q:\n%s", want, out)
		}
	}
}

func TestE2EToolErrors(t *testing.T) {
	dir := buildTools(t)
	cmd := exec.Command(filepath.Join(dir, "mbpsim"), "-n", "1000", "nonesuch")
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Errorf("unknown workload should fail:\n%s", out)
	}
	cmd = exec.Command(filepath.Join(dir, "mbpexp"), "wibble")
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Errorf("unknown experiment should fail:\n%s", out)
	}
}
