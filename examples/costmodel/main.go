// Costmodel: reproduce the paper's §5 hardware cost walkthrough and
// explore how the budget scales with block width and history length.
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"mbbp"
)

func main() {
	p := mbbp.PaperCostParams()
	e := mbbp.EstimateCost(p)
	kb := func(bits int) float64 { return float64(bits) / 1024 }

	fmt.Println("paper §5 walkthrough (W=8, h=10, 256-entry NLS, 1024-entry BIT):")
	fmt.Printf("  PHT %.0f Kbit, ST %.0f Kbit, NLS %.0f Kbit, BIT %.0f Kbit, BBR %.1f Kbit\n",
		kb(e.PHT), kb(e.ST), kb(e.NLS), kb(e.BIT), kb(e.BBR))
	fmt.Printf("  single block:              %.1f Kbit\n", kb(e.SingleBlockTotal()))
	fmt.Printf("  dual block, single select: %.1f Kbit\n", kb(e.DualSingleTotal()))
	fmt.Printf("  dual block, double select: %.1f Kbit\n", kb(e.DualDoubleTotal()))

	fmt.Println("\nscaling with block width and history length (dual, single select):")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "W\thist\ttotal Kbit")
	for _, w := range []int{4, 8, 16} {
		for _, h := range []int{10, 12} {
			q := p
			q.BlockWidth = w
			q.HistoryBits = h
			q.LineSize = w
			est := mbbp.EstimateCost(q)
			fmt.Fprintf(tw, "%d\t%d\t%.1f\n", w, h, kb(est.DualSingleTotal()))
		}
	}
	tw.Flush()
}
