// Customworkload: assemble your own program with the mini-ISA
// assembler, execute it on the functional CPU, and measure how well
// the paper's fetch mechanisms predict it. The program below is a
// classic pathological case: a loop whose branch alternates taken /
// not-taken, which a 2-bit counter mispredicts forever but global
// history captures immediately.
package main

import (
	"fmt"
	"log"

	"mbbp"
)

const source = `
; alternating-branch kernel: the inner branch flips every iteration.
.data
flip: .word 0
acc:  .word 0

.text
main:
    li r20, 0
loop:
    lw r1, flip(r0)
    xori r1, r1, 1
    sw r1, flip(r0)
    beqz r1, even
    lw r2, acc(r0)
    addi r2, r2, 3
    sw r2, acc(r0)
    jmp next
even:
    lw r2, acc(r0)
    slli r2, r2, 1
    sw r2, acc(r0)
next:
    addi r20, r20, 1
    li r3, 100000
    blt r20, r3, loop
    halt
`

func main() {
	prog, err := mbbp.Assemble("alternating", source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %q: %d instructions\n", prog.Name, len(prog.Code))

	tr, err := mbbp.CaptureTrace(prog, 400_000)
	if err != nil {
		log.Fatal(err)
	}

	// With global history, the alternating pattern is perfectly
	// predictable; watch the accuracy as the history shrinks to zero
	// correlation (1 bit).
	for _, hist := range []int{1, 2, 4, 10} {
		eng, err := mbbp.NewEngine(mbbp.WithSingleBlock(), mbbp.WithHistoryBits(hist))
		if err != nil {
			log.Fatal(err)
		}
		res := eng.Run(tr)
		fmt.Printf("history %2d bits: accuracy %.2f%%, IPC_f %.2f\n",
			hist, 100*res.CondAccuracy(), res.IPCf())
	}
}
