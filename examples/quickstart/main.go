// Quickstart: trace a built-in workload, run it through the paper's
// default dual-block fetch engine via the canonical mbbp.Run entry
// point, and print the headline metrics.
package main

import (
	"context"
	"fmt"
	"log"

	"mbbp"
)

func main() {
	ctx := context.Background()

	// Capture one million dynamic instructions of the "compress"
	// workload (an LZW-style kernel from the CINT95-shaped suite).
	tr, err := mbbp.WorkloadTrace("compress", 1_000_000)
	if err != nil {
		log.Fatal(err)
	}

	// NewConfig with no options is the paper's §4 setup: block width
	// 8, normal cache with 8 banks, 10-bit global history, one blocked
	// PHT, a 1024-entry select table, a 256-entry NLS target array,
	// dual-block fetching with single selection. mbbp.Run validates
	// the configuration, builds an engine, and drives it over the
	// trace — the same path the CLI and the mbbpd service use.
	res, err := mbbp.Run(ctx, mbbp.NewConfig(), tr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("multiple branch and block prediction — quickstart")
	fmt.Printf("workload:            %s (%d instructions)\n", res.Program, res.Instructions)
	fmt.Printf("effective fetch rate: %.2f instructions/cycle (IPC_f)\n", res.IPCf())
	fmt.Printf("instructions/block:   %.2f (IPB)\n", res.IPB())
	fmt.Printf("branch exec penalty:  %.3f cycles/branch (BEP)\n", res.BEP())
	fmt.Printf("cond branch accuracy: %.2f%%\n", 100*res.CondAccuracy())

	// Compare against fetching just one block per cycle.
	sres, err := mbbp.Run(ctx, mbbp.NewConfig(mbbp.WithSingleBlock()), tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsingle-block IPC_f:   %.2f  (dual block is %.2fx faster)\n",
		sres.IPCf(), res.IPCf()/sres.IPCf())
}
