// Quickstart: trace a built-in workload, run it through the paper's
// default dual-block fetch engine, and print the headline metrics.
package main

import (
	"fmt"
	"log"

	"mbbp"
)

func main() {
	// Capture one million dynamic instructions of the "compress"
	// workload (an LZW-style kernel from the CINT95-shaped suite).
	tr, err := mbbp.WorkloadTrace("compress", 1_000_000)
	if err != nil {
		log.Fatal(err)
	}

	// The default configuration is the paper's §4 setup: block width
	// 8, normal cache with 8 banks, 10-bit global history, one blocked
	// PHT, a 1024-entry select table, a 256-entry NLS target array,
	// dual-block fetching with single selection.
	eng, err := mbbp.NewEngine(mbbp.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	res := eng.Run(tr)

	fmt.Println("multiple branch and block prediction — quickstart")
	fmt.Printf("workload:            %s (%d instructions)\n", res.Program, res.Instructions)
	fmt.Printf("effective fetch rate: %.2f instructions/cycle (IPC_f)\n", res.IPCf())
	fmt.Printf("instructions/block:   %.2f (IPB)\n", res.IPB())
	fmt.Printf("branch exec penalty:  %.3f cycles/branch (BEP)\n", res.BEP())
	fmt.Printf("cond branch accuracy: %.2f%%\n", 100*res.CondAccuracy())

	// Compare against fetching just one block per cycle.
	single := mbbp.DefaultConfig()
	single.Mode = mbbp.SingleBlock
	se, err := mbbp.NewEngine(single)
	if err != nil {
		log.Fatal(err)
	}
	sres := se.Run(tr)
	fmt.Printf("\nsingle-block IPC_f:   %.2f  (dual block is %.2fx faster)\n",
		sres.IPCf(), res.IPCf()/sres.IPCf())
}
