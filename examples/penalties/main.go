// Penalties: dissect where fetch cycles go. Runs the hardest integer
// workload under four architectures and prints each one's BEP
// decomposition (the per-program view behind the paper's Figure 9),
// showing how the Table 3 penalty taxonomy shifts as the fetch
// mechanism gets more aggressive.
package main

import (
	"context"
	"fmt"
	"log"

	"mbbp"
)

func main() {
	tr, err := mbbp.WorkloadTrace("gcc", 500_000)
	if err != nil {
		log.Fatal(err)
	}

	// Each variant is the paper default plus a couple of options — the
	// functional-options construction the package now centers on.
	configs := []struct {
		label string
		cfg   mbbp.Config
	}{
		{"single block", mbbp.NewConfig(mbbp.WithSingleBlock())},
		{"dual block, single selection", mbbp.NewConfig()},
		{"dual block, double selection", mbbp.NewConfig(
			mbbp.WithDualBlock(mbbp.DoubleSelection), mbbp.WithSelectTables(8))},
		{"dual block, self-aligned cache", mbbp.NewConfig(
			mbbp.WithCache(mbbp.CacheSelfAligned, 8), mbbp.WithSelectTables(8))},
	}

	ctx := context.Background()
	for _, c := range configs {
		res, err := mbbp.Run(ctx, c.cfg, tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-32s IPC_f %5.2f, BEP %.3f\n", c.label, res.IPCf(), res.BEP())
		for k := mbbp.PenaltyKind(0); int(k) < len(res.PenaltyCycles); k++ {
			if res.PenaltyCycles[k] == 0 {
				continue
			}
			fmt.Printf("    %-20s %7d cycles over %6d events (BEP %.3f)\n",
				k, res.PenaltyCycles[k], res.PenaltyEvents[k], res.BEPOf(k))
		}
		fmt.Println()
	}
	fmt.Println("Conditional mispredictions dominate everywhere; the dual-block")
	fmt.Println("variants add misselect/GHR charges but more than pay for them in")
	fmt.Println("fetch bandwidth — the trade the paper's Figure 9 illustrates.")
}
