// Sweep: use the public API to explore a design space — how the
// effective fetch rate responds to history length and select-table
// count on an integer and a floating-point workload. This is the kind
// of custom experiment the harness does not provide canned.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"mbbp"
)

func main() {
	workloads := []string{"gcc", "swim"}
	traces := map[string]*mbbp.TraceBuffer{}
	for _, w := range workloads {
		tr, err := mbbp.WorkloadTrace(w, 500_000)
		if err != nil {
			log.Fatal(err)
		}
		traces[w] = tr
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "hist\tSTs\tgcc IPC_f\tswim IPC_f")
	for _, hist := range []int{8, 10, 12} {
		for _, sts := range []int{1, 8} {
			row := fmt.Sprintf("%d\t%d", hist, sts)
			for _, w := range workloads {
				// One option set per design point, one canonical entry
				// point for running it.
				cfg := mbbp.NewConfig(
					mbbp.WithHistoryBits(hist),
					mbbp.WithSelectTables(sts),
				)
				res, err := mbbp.Run(context.Background(), cfg, traces[w])
				if err != nil {
					log.Fatal(err)
				}
				row += fmt.Sprintf("\t%.2f", res.IPCf())
			}
			fmt.Fprintln(tw, row)
		}
	}
	tw.Flush()

	// The scalar baseline of Figure 6, for reference.
	fmt.Printf("\nscalar two-level baseline (h=10, 8 tables):\n")
	for _, w := range workloads {
		rate := mbbp.ScalarMispredictRate(traces[w], 10, 8)
		fmt.Printf("  %-6s misprediction rate: %.2f%%\n", w, 100*rate)
	}
}
