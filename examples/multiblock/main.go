// Multiblock: explore the paper's §5 extension — predicting more than
// two blocks per cycle. Every extra block adds a select table and a
// target array (cost grows linearly) while the achievable fetch rate
// depends on how predictable the workload's control flow is: the
// floating-point suite keeps scaling, the integer suite saturates.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"mbbp"
)

func main() {
	workloads := []string{"go", "swim"} // a hard and an easy workload
	traces := map[string]*mbbp.TraceBuffer{}
	for _, w := range workloads {
		tr, err := mbbp.WorkloadTrace(w, 400_000)
		if err != nil {
			log.Fatal(err)
		}
		traces[w] = tr
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "blocks/cycle\tgo IPC_f\tgo BEP\tswim IPC_f\tswim BEP")
	for blocks := 1; blocks <= 4; blocks++ {
		// give the selectors their best shot with 8 select tables
		cfg := mbbp.NewConfig(mbbp.WithBlocks(blocks), mbbp.WithSelectTables(8))
		row := fmt.Sprintf("%d", blocks)
		for _, w := range workloads {
			eng, err := mbbp.NewEngineFromConfig(cfg)
			if err != nil {
				log.Fatal(err)
			}
			res := eng.Run(traces[w])
			row += fmt.Sprintf("\t%.2f\t%.3f", res.IPCf(), res.BEP())
		}
		fmt.Fprintln(tw, row)
	}
	tw.Flush()

	fmt.Println("\nNote the shape: predictable loop code (swim) keeps gaining with")
	fmt.Println("every block, while branchy code (go) pays growing later-block")
	fmt.Println("penalties — the diminishing returns §5 of the paper implies.")
}
