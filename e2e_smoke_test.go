package mbbp

// Smoke tests pinning the restored target-array paths through the real
// binaries: each of the three CLIs is built and driven through one
// small invocation that cannot work unless internal/target does — a
// BTB run with near-block encoding, the Table 5 target-array sweep,
// the §5 N-block extension, and the assembler's workload listing that
// feeds them.

import (
	"strings"
	"testing"
)

func TestE2ESmokeSimBTBNear(t *testing.T) {
	out := runTool(t, "mbpsim", "-n", "30000", "-target", "btb", "-entries", "32", "-near", "li")
	for _, want := range []string{"BTB=32", "near", "IPC_f", "li"} {
		if !strings.Contains(out, want) {
			t.Errorf("mbpsim BTB+near output missing %q:\n%s", want, out)
		}
	}
}

func TestE2ESmokeSimNBlock(t *testing.T) {
	out := runTool(t, "mbpsim", "-n", "30000", "-blocks", "4", "li")
	if !strings.Contains(out, "4blk") || !strings.Contains(out, "IPC_f") {
		t.Errorf("mbpsim 4-block output malformed:\n%s", out)
	}
}

func TestE2ESmokeExpTable5(t *testing.T) {
	out := runTool(t, "mbpexp", "-n", "20000", "-programs", "li,go", "table5")
	for _, want := range []string{"Table 5", "BTB", "NLS", "near"} {
		if !strings.Contains(out, want) {
			t.Errorf("mbpexp table5 output missing %q:\n%s", want, out)
		}
	}
}

func TestE2ESmokeExpExtBlocks(t *testing.T) {
	out := runTool(t, "mbpexp", "-n", "20000", "-programs", "li,swim", "extblocks")
	if !strings.Contains(out, "3") || !strings.Contains(out, "4") {
		t.Errorf("mbpexp extblocks should cover 3 and 4 blocks/cycle:\n%s", out)
	}
}

func TestE2ESmokeExpEvents(t *testing.T) {
	out := runTool(t, "mbpexp", "-n", "20000", "-programs", "li,go", "-topn", "3", "events")
	for _, want := range []string{"Misprediction attribution", "top 3", "BEP=", "mispredict", "@"} {
		if !strings.Contains(out, want) {
			t.Errorf("mbpexp events output missing %q:\n%s", want, out)
		}
	}
	csv := runTool(t, "mbpexp", "-n", "20000", "-programs", "li,go", "-csv", "events")
	if !strings.Contains(csv, "program,kind,rank,block_addr,events,cycles,kind_cycles,share") {
		t.Errorf("mbpexp events -csv missing header:\n%s", csv)
	}
}

func TestE2ESmokeAsmList(t *testing.T) {
	out := runTool(t, "mbpasm", "-list")
	for _, want := range []string{"compress", "swim", "CINT95", "CFP95"} {
		if !strings.Contains(out, want) {
			t.Errorf("mbpasm -list missing %q:\n%s", want, out)
		}
	}
}
