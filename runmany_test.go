package mbbp

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestRunManyMatchesRun: every RunMany result is identical to the
// corresponding single Run over the same trace, including across a
// geometry split (normal + self-aligned lanes in one call).
func TestRunManyMatchesRun(t *testing.T) {
	tr, err := WorkloadTrace("li", 60_000)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []Config{
		DefaultConfig(),
		NewConfig(WithHistoryBits(12)),
		NewConfig(WithCache(CacheSelfAligned, 8)),
		NewConfig(WithSingleBlock()),
	}
	ctx := context.Background()
	many, err := RunMany(ctx, cfgs, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(many) != len(cfgs) {
		t.Fatalf("got %d results for %d configs", len(many), len(cfgs))
	}
	for i, cfg := range cfgs {
		solo, err := Run(ctx, cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		if many[i] != solo {
			t.Errorf("config %d diverges:\n many %+v\n solo %+v", i, many[i], solo)
		}
	}
}

// TestRunManyErrors: nil sources, empty sets and invalid configurations
// are rejected before any simulation, with the config index named.
func TestRunManyErrors(t *testing.T) {
	tr, err := WorkloadTrace("li", 1_000)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := RunMany(ctx, []Config{DefaultConfig()}, nil); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := RunMany(ctx, nil, tr); err == nil {
		t.Error("empty config set accepted")
	}
	bad := DefaultConfig()
	bad.HistoryBits = -3
	_, err = RunMany(ctx, []Config{DefaultConfig(), bad}, tr)
	if err == nil {
		t.Fatal("invalid config accepted")
	}
	if !errors.Is(err, ErrInvalidConfig) || !strings.Contains(err.Error(), "config 1") {
		t.Errorf("unhelpful error: %v", err)
	}
}

// TestRunManyCancellation: a pre-cancelled context yields no results.
func TestRunManyCancellation(t *testing.T) {
	tr, err := WorkloadTrace("li", 50_000)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunMany(ctx, []Config{DefaultConfig()}, tr); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
