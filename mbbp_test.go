package mbbp

import (
	"strings"
	"testing"
)

// TestPublicAPIRoundTrip exercises the documented quick-start flow
// through the façade only.
func TestPublicAPIRoundTrip(t *testing.T) {
	tr, err := WorkloadTrace("li", 100_000)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run(tr)
	if res.Instructions != 100_000 {
		t.Errorf("instructions = %d", res.Instructions)
	}
	if res.IPCf() <= 0 || res.BEP() < 0 {
		t.Errorf("metrics implausible: %+v", res)
	}
}

func TestWorkloadLists(t *testing.T) {
	all := Workloads()
	if len(all) != 18 {
		t.Fatalf("suite has %d programs, want 18", len(all))
	}
	if len(IntWorkloads()) != 8 || len(FPWorkloads()) != 10 {
		t.Errorf("suite split %d/%d, want 8/10", len(IntWorkloads()), len(FPWorkloads()))
	}
	if _, err := WorkloadTrace("nonesuch", 10); err == nil {
		t.Error("unknown workload should error")
	}
}

func TestAssembleAndSimulate(t *testing.T) {
	prog, err := Assemble("tiny", `
main:
    li r1, 100
loop:
    subi r1, r1, 1
    bnez r1, loop
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := CaptureTrace(prog, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Mode = SingleBlock
	eng, err := NewEngineFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run(tr)
	// A simple counted loop should predict nearly perfectly.
	if res.CondAccuracy() < 0.95 {
		t.Errorf("loop accuracy = %.3f", res.CondAccuracy())
	}
}

func TestAssembleErrorsSurface(t *testing.T) {
	_, err := Assemble("bad", "wibble r1")
	if err == nil || !strings.Contains(err.Error(), "unknown mnemonic") {
		t.Errorf("error = %v", err)
	}
}

func TestScalarBaselineFacade(t *testing.T) {
	tr, err := WorkloadTrace("perl", 100_000)
	if err != nil {
		t.Fatal(err)
	}
	rate := ScalarMispredictRate(tr, 10, 8)
	if rate <= 0 || rate >= 0.5 {
		t.Errorf("scalar rate = %.3f", rate)
	}
}

func TestCostFacade(t *testing.T) {
	e := EstimateCost(PaperCostParams())
	if e.SingleBlockTotal()/1024 != 52 {
		t.Errorf("single block total = %d Kbit, want 52", e.SingleBlockTotal()/1024)
	}
}

func TestCacheGeometryFacade(t *testing.T) {
	g := CacheGeometry(CacheSelfAligned, 8)
	if g.Banks != 16 || g.LineSize != 8 {
		t.Errorf("self-aligned geometry = %+v", g)
	}
	cfg := DefaultConfig()
	cfg.Geometry = g
	if _, err := NewEngineFromConfig(cfg); err != nil {
		t.Errorf("self-aligned config rejected: %v", err)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HistoryBits = 0
	if _, err := NewEngineFromConfig(cfg); err == nil {
		t.Error("history 0 should be rejected")
	}
	cfg = DefaultConfig()
	cfg.Mode = SingleBlock
	cfg.Selection = DoubleSelection
	if _, err := NewEngineFromConfig(cfg); err == nil {
		t.Error("single block + double selection should be rejected")
	}
}
